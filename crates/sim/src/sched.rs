//! The seeded scheduler: serializes every enrolled engine thread onto a
//! single virtual-time token and picks interleavings (and faults) from a
//! deterministic RNG.
//!
//! ## How determinism survives real OS threads
//!
//! The engine's workers stay ordinary `std::thread`s, but exactly one
//! enrolled thread holds the *token* at any moment; everyone else is
//! parked on a condvar. Every cross-thread handoff (ring push/pop, park,
//! named point — see `orthrus_common::sim`) is a yield point: the running
//! thread records a trace step, rolls the scheduler's RNG for who runs
//! next, and hands the token over. Since engine state only changes while
//! a thread runs, and threads only run one at a time between yield
//! points, the whole execution is a deterministic function of the seed —
//! OS scheduling decides nothing.
//!
//! Two details keep it airtight:
//! - thread identity comes from a **pre-declared name list** (`cc0`,
//!   `exec1`, `client`), never from registration order, which the OS
//!   *does* control;
//! - enrollment itself is a yield point: `register` blocks until every
//!   expected thread arrived and the token reaches the caller, so even
//!   startup is serialized.
//!
//! ## Faults
//!
//! The same RNG drives injection: a denied pop is a delayed/reordered
//! delivery (the messages stay queued), a denied push is a ring-full
//! burst, and a shuffled fan-in start lane reorders grant streams across
//! lanes (never within one). Ingest pushes are exempt — the session
//! reserves its slot under the lane lock before pushing, so a pretend
//! -full there would violate the ring's own contract rather than model a
//! real fault. Past [`FaultPlan::soft_cap`] steps, injection stops (the
//! run must terminate; a genuine livelock would still hang and be
//! caught), and an exhausted [`FaultPlan::budget`] stops it early — the
//! knob the trace minimizer binary-searches.

use std::sync::{Condvar, Mutex};

use orthrus_common::rng::XorShift64;
use orthrus_common::sim::{ChanId, Scheduler, SimOp};

/// Ring labels eligible for push-denial (ring-full bursts). `"ingest"`
/// is deliberately absent: see the module docs.
pub const PUSH_FAULTABLE: &[&str] = &["exec_cc", "cc_cc", "cc_exec", "completion"];

/// What faults a simulated run injects, and how many.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Percent chance a pop is denied (delayed delivery).
    pub delay_pct: u32,
    /// Percent chance a push to a [`PUSH_FAULTABLE`] ring is denied
    /// (ring-full burst).
    pub deny_push_pct: u32,
    /// Shuffle each fan-in round's starting lane (grant reordering).
    pub shuffle_lanes: bool,
    /// Restrict pop-denial to these ring labels (`None` = all labels).
    pub delay_labels: Option<Vec<String>>,
    /// Max faults to fire (`None` = unlimited). Same seed + same budget
    /// ⇒ bit-identical run; the minimizer searches this knob.
    pub budget: Option<u64>,
    /// Steps after which no further faults fire, bounding termination.
    pub soft_cap: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            delay_pct: 0,
            deny_push_pct: 0,
            shuffle_lanes: false,
            delay_labels: None,
            budget: None,
            soft_cap: 2_000_000,
        }
    }
}

impl FaultPlan {
    /// The plan with a different fault budget (minimizer step).
    pub fn with_budget(&self, budget: u64) -> Self {
        FaultPlan {
            budget: Some(budget),
            ..self.clone()
        }
    }
}

/// One recorded scheduler step. Compact — a long run records millions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    pub thread: u16,
    pub kind: StepKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    Push { chan: ChanId, n: u32, denied: bool },
    Pop { chan: ChanId, denied: bool },
    Park,
    Point { name: u32 },
    Lane { lanes: u32, start: u32 },
    Exit,
}

/// Everything observable about a finished simulated schedule.
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// Total steps taken (counted even when the trace is not kept).
    pub steps: u64,
    /// Order-sensitive hash over every step — the bit-identity pin.
    pub trace_hash: u64,
    /// Faults actually fired.
    pub perturbations: u64,
    /// The full step list, when tracing was enabled.
    pub trace: Option<Vec<Step>>,
    /// Ring label per [`ChanId`] (index `chan - 1`).
    pub chan_labels: Vec<&'static str>,
    /// Interned point names ([`StepKind::Point`] indexes).
    pub point_names: Vec<String>,
    /// Threads that tried to enroll under an unexpected name — a harness
    /// bug that breaks determinism; the runner reports it as a violation.
    pub unknown_registrations: Vec<String>,
}

impl SchedReport {
    /// Render the last `n` steps with labels resolved — what the
    /// explorer prints for a failing seed.
    pub fn render_tail(&self, names: &[String], n: usize) -> String {
        let Some(trace) = &self.trace else {
            return String::from("(trace not kept; re-run with tracing)");
        };
        let start = trace.len().saturating_sub(n);
        let mut out = String::new();
        for (i, step) in trace[start..].iter().enumerate() {
            let who = names.get(step.thread as usize).map_or("?", String::as_str);
            let chan_label = |chan: ChanId| {
                self.chan_labels
                    .get(chan.wrapping_sub(1) as usize)
                    .copied()
                    .unwrap_or("?")
            };
            let line = match step.kind {
                StepKind::Push { chan, n, denied } => format!(
                    "push {}#{chan} n={n}{}",
                    chan_label(chan),
                    if denied { " DENIED" } else { "" }
                ),
                StepKind::Pop { chan, denied } => format!(
                    "pop {}#{chan}{}",
                    chan_label(chan),
                    if denied { " DENIED" } else { "" }
                ),
                StepKind::Park => "park".to_string(),
                StepKind::Point { name } => format!(
                    "point {}",
                    self.point_names
                        .get(name as usize)
                        .map_or("?", String::as_str)
                ),
                StepKind::Lane { lanes, start } => {
                    format!("fanin lanes={lanes} start={start}")
                }
                StepKind::Exit => "exit".to_string(),
            };
            out.push_str(&format!("  [{:>6}] {who:<8} {line}\n", start + i));
        }
        out
    }
}

struct State {
    registered: Vec<bool>,
    live: Vec<bool>,
    parked: Vec<bool>,
    running: Option<usize>,
    n_registered: usize,
    started: bool,
    rng: XorShift64,
    steps: u64,
    trace_hash: u64,
    perturbations: u64,
    budget_left: Option<u64>,
    trace: Option<Vec<Step>>,
    chan_labels: Vec<&'static str>,
    point_names: Vec<String>,
    unknown: Vec<String>,
}

impl State {
    /// Whether injection is still allowed, and consume one budget unit
    /// if a fault fires.
    fn try_fire(&mut self, plan: &FaultPlan, pct: u32) -> bool {
        if self.steps >= plan.soft_cap || pct == 0 {
            return false;
        }
        if let Some(0) = self.budget_left {
            return false;
        }
        if !self.rng.chance_percent(pct) {
            return false;
        }
        if let Some(b) = &mut self.budget_left {
            *b -= 1;
        }
        self.perturbations += 1;
        true
    }

    fn record(&mut self, thread: usize, kind: StepKind) {
        self.steps += 1;
        self.trace_hash = fold_step(self.trace_hash, thread, &kind);
        if let Some(trace) = &mut self.trace {
            trace.push(Step {
                thread: thread as u16,
                kind,
            });
        }
    }
}

/// FNV-style fold of one step into the running trace hash.
fn fold_step(mut h: u64, thread: usize, kind: &StepKind) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    };
    mix(thread as u64);
    match *kind {
        StepKind::Push { chan, n, denied } => {
            mix(1);
            mix(chan as u64);
            mix(n as u64);
            mix(denied as u64);
        }
        StepKind::Pop { chan, denied } => {
            mix(2);
            mix(chan as u64);
            mix(denied as u64);
        }
        StepKind::Park => mix(3),
        StepKind::Point { name } => {
            mix(4);
            mix(name as u64);
        }
        StepKind::Lane { lanes, start } => {
            mix(5);
            mix(lanes as u64);
            mix(start as u64);
        }
        StepKind::Exit => mix(6),
    }
    h
}

/// The seeded scheduler. Install with `orthrus_common::sim::install`,
/// then start the engine and enroll the client; see `crate::run_sim`.
pub struct SimScheduler {
    names: Vec<String>,
    plan: FaultPlan,
    state: Mutex<State>,
    cv: Condvar,
}

impl SimScheduler {
    /// `names` is the full expected participant set, in canonical order
    /// (thread ids are indexes into it — never registration order).
    pub fn new(seed: u64, names: Vec<String>, plan: FaultPlan, keep_trace: bool) -> Self {
        let n = names.len();
        assert!(n > 0, "a simulation needs at least one participant");
        SimScheduler {
            names,
            state: Mutex::new(State {
                registered: vec![false; n],
                live: vec![false; n],
                parked: vec![false; n],
                running: None,
                n_registered: 0,
                started: false,
                rng: XorShift64::new(seed ^ 0x0005_1EDD_5C4E_D01E),
                steps: 0,
                trace_hash: 0xcbf2_9ce4_8422_2325,
                perturbations: 0,
                budget_left: plan.budget,
                trace: keep_trace.then(Vec::new),
                chan_labels: Vec::new(),
                point_names: Vec::new(),
                unknown: Vec::new(),
            }),
            plan,
            cv: Condvar::new(),
        }
    }

    /// The canonical participant list for an engine shape plus the one
    /// driving client thread.
    pub fn engine_names(n_cc: usize, n_exec: usize) -> Vec<String> {
        let mut names = Vec::with_capacity(n_cc + n_exec + 1);
        names.extend((0..n_cc).map(|i| format!("cc{i}")));
        names.extend((0..n_exec).map(|i| format!("exec{i}")));
        names.push("client".to_string());
        names
    }

    /// The participant names, in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Snapshot the schedule's observables. Meaningful once every
    /// participant has retired (the runner calls it after the client
    /// guard drops).
    pub fn report(&self) -> SchedReport {
        let s = self.state.lock().unwrap();
        SchedReport {
            steps: s.steps,
            trace_hash: s.trace_hash,
            perturbations: s.perturbations,
            trace: s.trace.clone(),
            chan_labels: s.chan_labels.clone(),
            point_names: s.point_names.clone(),
            unknown_registrations: s.unknown.clone(),
        }
    }

    /// Pick the next runnable thread (parked ∧ live) — callers guarantee
    /// at least one candidate.
    fn pick_next(s: &mut State) -> usize {
        let cands: Vec<usize> = (0..s.live.len())
            .filter(|&i| s.parked[i] && s.live[i])
            .collect();
        debug_assert!(!cands.is_empty(), "no runnable sim thread");
        cands[s.rng.next_below(cands.len() as u64) as usize]
    }

    /// Hand the token to a seeded choice (possibly back to `me`) and
    /// block until it returns.
    fn yield_token<'a>(
        &'a self,
        mut s: std::sync::MutexGuard<'a, State>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, State> {
        s.parked[me] = true;
        let next = Self::pick_next(&mut s);
        s.running = Some(next);
        if next != me {
            self.cv.notify_all();
            while s.running != Some(me) {
                s = self.cv.wait(s).unwrap();
            }
        }
        s.parked[me] = false;
        s
    }
}

impl Scheduler for SimScheduler {
    fn register(&self, name: &str) -> Option<usize> {
        let Some(id) = self.names.iter().position(|n| n == name) else {
            self.state.lock().unwrap().unknown.push(name.to_string());
            return None;
        };
        let mut s = self.state.lock().unwrap();
        assert!(!s.registered[id], "sim thread {name:?} enrolled twice");
        s.registered[id] = true;
        s.live[id] = true;
        s.parked[id] = true;
        s.n_registered += 1;
        if s.n_registered == self.names.len() {
            // Barrier complete: grant the first token. From here on the
            // execution is serialized and seed-deterministic.
            s.started = true;
            let first = Self::pick_next(&mut s);
            s.running = Some(first);
            self.cv.notify_all();
        }
        while s.running != Some(id) {
            s = self.cv.wait(s).unwrap();
        }
        s.parked[id] = false;
        Some(id)
    }

    fn unregister(&self, thread: usize) {
        let mut s = self.state.lock().unwrap();
        debug_assert_eq!(s.running, Some(thread), "retiring thread lacks the token");
        s.record(thread, StepKind::Exit);
        s.live[thread] = false;
        s.parked[thread] = false;
        let any_left = (0..s.live.len()).any(|i| s.parked[i] && s.live[i]);
        s.running = if any_left {
            Some(Self::pick_next(&mut s))
        } else {
            None
        };
        self.cv.notify_all();
    }

    fn reached(&self, thread: usize, op: SimOp<'_>) -> bool {
        let mut s = self.state.lock().unwrap();
        debug_assert_eq!(
            s.running,
            Some(thread),
            "hook from a thread without the token"
        );
        let proceed = match op {
            SimOp::Push { chan, label, n } => {
                let eligible = PUSH_FAULTABLE.contains(&label);
                let denied = eligible && s.try_fire(&self.plan, self.plan.deny_push_pct);
                s.record(
                    thread,
                    StepKind::Push {
                        chan,
                        n: n as u32,
                        denied,
                    },
                );
                !denied
            }
            SimOp::Pop { chan, label } => {
                let eligible = self
                    .plan
                    .delay_labels
                    .as_ref()
                    .is_none_or(|ls| ls.iter().any(|l| l == label));
                let denied = eligible && s.try_fire(&self.plan, self.plan.delay_pct);
                s.record(thread, StepKind::Pop { chan, denied });
                !denied
            }
            SimOp::Park => {
                s.record(thread, StepKind::Park);
                true
            }
            SimOp::Point { name } => {
                let idx = match s.point_names.iter().position(|p| p == name) {
                    Some(i) => i,
                    None => {
                        s.point_names.push(name.to_string());
                        s.point_names.len() - 1
                    }
                };
                s.record(thread, StepKind::Point { name: idx as u32 });
                true
            }
        };
        let _s = self.yield_token(s, thread);
        proceed
    }

    fn fanin_start(&self, thread: usize, lanes: usize) -> Option<usize> {
        if !self.plan.shuffle_lanes || lanes < 2 {
            return None;
        }
        let mut s = self.state.lock().unwrap();
        if !s.try_fire(&self.plan, 100) {
            return None;
        }
        let start = s.rng.next_below(lanes as u64) as usize;
        s.record(
            thread,
            StepKind::Lane {
                lanes: lanes as u32,
                start: start as u32,
            },
        );
        Some(start)
    }

    fn alloc_chan(&self, label: &'static str) -> ChanId {
        let mut s = self.state.lock().unwrap();
        s.chan_labels.push(label);
        s.chan_labels.len() as ChanId
    }
}
