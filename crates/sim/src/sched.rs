//! The seeded scheduler: serializes every enrolled engine thread onto a
//! single virtual-time token and picks interleavings (and faults) from a
//! deterministic RNG.
//!
//! ## How determinism survives real OS threads
//!
//! The engine's workers stay ordinary `std::thread`s, but exactly one
//! enrolled thread holds the *token* at any moment; everyone else is
//! parked on a condvar. Every cross-thread handoff (ring push/pop, park,
//! named point — see `orthrus_common::sim`) is a yield point: the running
//! thread announces the operation it is about to take, rolls the
//! scheduler's RNG for who runs next, and hands the token over; when the
//! token returns, it decides faults, records the step, and proceeds.
//! Since engine state only changes while a thread runs, and threads only
//! run one at a time between yield points, the whole execution is a
//! deterministic function of the seed — OS scheduling decides nothing.
//!
//! Two details keep it airtight:
//! - thread identity comes from a **pre-declared name list** (`cc0`,
//!   `exec1`, `client`), never from registration order, which the OS
//!   *does* control;
//! - enrollment itself is a yield point: `register` blocks until every
//!   expected thread arrived and the token reaches the caller, so even
//!   startup is serialized.
//!
//! ## Coverage-directed picks
//!
//! Because each parked thread has *announced* its next operation, the
//! picker knows which handoff **transition** (previous step's label →
//! candidate's announced label, see [`crate::cover`]) each choice would
//! take. A scheduler built with a coverage snapshot
//! ([`SimScheduler::with_coverage`]) weights its draw toward candidates
//! whose transition is unseen — in the snapshot or so far in this run —
//! by [`NOVELTY_WEIGHT`]. The weighted draw is still a pure function of
//! `(seed, budget, snapshot)`, so guided runs replay bit-identically
//! given the same snapshot.
//!
//! ## Faults
//!
//! The same RNG drives injection: a denied pop is a delayed/reordered
//! delivery (the messages stay queued), a denied push is a ring-full
//! burst, and a shuffled fan-in start lane reorders grant streams across
//! lanes (never within one). Ingest pushes are exempt — the session
//! reserves its slot under the lane lock before pushing, so a pretend
//! -full there would violate the ring's own contract rather than model a
//! real fault. Past [`FaultPlan::soft_cap`] steps, injection stops (the
//! run must terminate; a genuine livelock would still hang and be
//! caught), and an exhausted [`FaultPlan::budget`] stops it early — the
//! knob the trace minimizer binary-searches.
//!
//! ## Crash-restart
//!
//! A [`CrashSpec`] kills one named thread at its first hook at or past a
//! scheduled step: the decision comes back as
//! [`SimDecision::Crash`](orthrus_common::sim::SimDecision) and the
//! dispatch layer panics on the victim's behalf, so the enrollment guard
//! retires it like any real thread death. The run then recovers *inside
//! the same simulation*: the surviving driver announces the replacement
//! thread group with [`SimScheduler::expect_restart`], restarts the
//! engine, and [`SimScheduler::await_restart`] admits the whole group
//! atomically — arrivals are OS-timed, but none becomes runnable until
//! the driver (which holds the token throughout) says so, keeping the
//! candidate sets, and therefore the schedule, deterministic.

use std::collections::HashSet;
use std::str::FromStr;
use std::sync::{Condvar, Mutex};

use orthrus_common::rng::XorShift64;
use orthrus_common::sim::{ChanId, Scheduler, SimDecision, SimOp};

use crate::cover::{fnv_mix, fnv_str, transition};

/// Ring labels eligible for push-denial (ring-full bursts). `"ingest"`
/// is deliberately absent: see the module docs.
pub const PUSH_FAULTABLE: &[&str] = &["exec_cc", "cc_cc", "cc_exec", "completion"];

/// How much more likely a novel-transition candidate is to be picked
/// than a seen one. High enough to steer, low enough that hot orderings
/// (which the invariants also need exercised) still run.
pub const NOVELTY_WEIGHT: u64 = 8;

/// Kill one enrolled thread mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSpec {
    /// The victim's enrolled name (`"exec0"`, `"sync"`, `"ckpt"`, …).
    pub victim: String,
    /// Fires at the victim's first hook once this many steps have
    /// executed. Not budget-counted: the budget minimizer searches the
    /// ordinary faults *around* a fixed crash.
    pub at_step: u64,
}

/// What faults a simulated run injects, and how many.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Percent chance a pop is denied (delayed delivery).
    pub delay_pct: u32,
    /// Percent chance a push to a [`PUSH_FAULTABLE`] ring is denied
    /// (ring-full burst).
    pub deny_push_pct: u32,
    /// Shuffle each fan-in round's starting lane (grant reordering).
    pub shuffle_lanes: bool,
    /// Restrict pop-denial to these ring labels (`None` = all labels).
    pub delay_labels: Option<Vec<String>>,
    /// Max faults to fire (`None` = unlimited). Same seed + same budget
    /// ⇒ bit-identical run; the minimizer searches this knob.
    pub budget: Option<u64>,
    /// Steps after which no further faults fire, bounding termination.
    pub soft_cap: u64,
    /// Kill a thread mid-run (see [`CrashSpec`]).
    pub crash: Option<CrashSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            delay_pct: 0,
            deny_push_pct: 0,
            shuffle_lanes: false,
            delay_labels: None,
            budget: None,
            soft_cap: 2_000_000,
            crash: None,
        }
    }
}

impl FaultPlan {
    /// The plan with a different fault budget (minimizer step).
    pub fn with_budget(&self, budget: u64) -> Self {
        FaultPlan {
            budget: Some(budget),
            ..self.clone()
        }
    }

    /// Render the plan as a compact spec string (`""` for the default
    /// plan) — the inverse of [`FaultPlan::from_str`], so a failing
    /// plan is reproducible from a command line.
    pub fn to_spec(&self) -> String {
        let d = FaultPlan::default();
        let mut parts: Vec<String> = Vec::new();
        if self.delay_pct != d.delay_pct {
            parts.push(format!("delay={}", self.delay_pct));
        }
        if self.deny_push_pct != d.deny_push_pct {
            parts.push(format!("deny={}", self.deny_push_pct));
        }
        if self.shuffle_lanes {
            parts.push("shuffle".to_string());
        }
        if let Some(labels) = &self.delay_labels {
            parts.push(format!("labels={}", labels.join("|")));
        }
        if let Some(b) = self.budget {
            parts.push(format!("budget={b}"));
        }
        if self.soft_cap != d.soft_cap {
            parts.push(format!("cap={}", self.soft_cap));
        }
        if let Some(c) = &self.crash {
            parts.push(format!("crash={}@{}", c.victim, c.at_step));
        }
        parts.join(",")
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    /// Parse a spec string like
    /// `"delay=30,deny=10,shuffle,labels=cc_cc|cc_exec,budget=25,crash=exec0@500"`.
    /// The empty string is the default plan.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::default();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=').unwrap_or((part, ""));
            let num = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("{key}: bad number {v:?}"))
            };
            match key {
                "delay" => plan.delay_pct = num(value)? as u32,
                "deny" => plan.deny_push_pct = num(value)? as u32,
                "shuffle" => plan.shuffle_lanes = true,
                "labels" => {
                    plan.delay_labels =
                        Some(value.split('|').map(str::to_string).collect::<Vec<_>>())
                }
                "budget" => plan.budget = Some(num(value)?),
                "cap" => plan.soft_cap = num(value)?,
                "crash" => {
                    let (victim, at) = value
                        .split_once('@')
                        .ok_or_else(|| format!("crash: want victim@step, got {value:?}"))?;
                    plan.crash = Some(CrashSpec {
                        victim: victim.to_string(),
                        at_step: num(at)?,
                    });
                }
                other => return Err(format!("unknown fault-plan key {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// One recorded scheduler step. Compact — a long run records millions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    pub thread: u16,
    pub kind: StepKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    Push {
        chan: ChanId,
        n: u32,
        denied: bool,
    },
    Pop {
        chan: ChanId,
        denied: bool,
    },
    Park,
    Point {
        name: u32,
    },
    Lane {
        lanes: u32,
        start: u32,
    },
    Exit,
    /// An injected mid-run crash ([`CrashSpec`]) fired here.
    Crash,
}

/// Everything observable about a finished simulated schedule.
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// Total steps taken (counted even when the trace is not kept).
    pub steps: u64,
    /// Order-sensitive hash over every step — the bit-identity pin.
    pub trace_hash: u64,
    /// Faults actually fired.
    pub perturbations: u64,
    /// The full step list, when tracing was enabled.
    pub trace: Option<Vec<Step>>,
    /// Ring label per [`ChanId`] (index `chan - 1`).
    pub chan_labels: Vec<&'static str>,
    /// Interned point names ([`StepKind::Point`] indexes).
    pub point_names: Vec<String>,
    /// Threads that tried to enroll under an unexpected name — a harness
    /// bug that breaks determinism; the runner reports it as a violation.
    pub unknown_registrations: Vec<String>,
    /// The run's handoff-transition set (see [`crate::cover`]) — what
    /// the explorer folds into its [`crate::cover::CoverageMap`].
    pub transitions: HashSet<u64>,
    /// Whether the plan's [`CrashSpec`] fired.
    pub crashed: bool,
}

impl SchedReport {
    /// Render the last `n` steps with labels resolved — what the
    /// explorer prints for a failing seed.
    pub fn render_tail(&self, names: &[String], n: usize) -> String {
        let Some(trace) = &self.trace else {
            return String::from("(trace not kept; re-run with tracing)");
        };
        let start = trace.len().saturating_sub(n);
        let mut out = String::new();
        for (i, step) in trace[start..].iter().enumerate() {
            let who = names.get(step.thread as usize).map_or("?", String::as_str);
            let chan_label = |chan: ChanId| {
                self.chan_labels
                    .get(chan.wrapping_sub(1) as usize)
                    .copied()
                    .unwrap_or("?")
            };
            let line = match step.kind {
                StepKind::Push { chan, n, denied } => format!(
                    "push {}#{chan} n={n}{}",
                    chan_label(chan),
                    if denied { " DENIED" } else { "" }
                ),
                StepKind::Pop { chan, denied } => format!(
                    "pop {}#{chan}{}",
                    chan_label(chan),
                    if denied { " DENIED" } else { "" }
                ),
                StepKind::Park => "park".to_string(),
                StepKind::Point { name } => format!(
                    "point {}",
                    self.point_names
                        .get(name as usize)
                        .map_or("?", String::as_str)
                ),
                StepKind::Lane { lanes, start } => {
                    format!("fanin lanes={lanes} start={start}")
                }
                StepKind::Exit => "exit".to_string(),
                StepKind::Crash => "CRASH (injected)".to_string(),
            };
            out.push_str(&format!("  [{:>6}] {who:<8} {line}\n", start + i));
        }
        out
    }
}

struct State {
    registered: Vec<bool>,
    live: Vec<bool>,
    parked: Vec<bool>,
    running: Option<usize>,
    n_registered: usize,
    started: bool,
    rng: XorShift64,
    steps: u64,
    trace_hash: u64,
    perturbations: u64,
    budget_left: Option<u64>,
    trace: Option<Vec<Step>>,
    chan_labels: Vec<&'static str>,
    point_names: Vec<String>,
    unknown: Vec<String>,
    /// Per-thread label of the *announced* next operation (hook entry
    /// sets it before yielding) — what the guided picker weights by.
    pending_label: Vec<u64>,
    /// Label of the last executed step, the transition's "from" side.
    last_label: u64,
    /// Transitions taken this run.
    run_seen: HashSet<u64>,
    crash_fired: bool,
    /// Restart barrier: ids announced by `expect_restart` that have not
    /// re-registered yet, and the full group awaiting activation.
    restart_pending: usize,
    restart_group: Vec<usize>,
}

impl State {
    /// Whether injection is still allowed, and consume one budget unit
    /// if a fault fires.
    fn try_fire(&mut self, plan: &FaultPlan, pct: u32) -> bool {
        if self.steps >= plan.soft_cap || pct == 0 {
            return false;
        }
        if let Some(0) = self.budget_left {
            return false;
        }
        if !self.rng.chance_percent(pct) {
            return false;
        }
        if let Some(b) = &mut self.budget_left {
            *b -= 1;
        }
        self.perturbations += 1;
        true
    }

    fn record(&mut self, thread: usize, kind: StepKind) {
        self.steps += 1;
        self.trace_hash = fold_step(self.trace_hash, thread, &kind);
        if let Some(trace) = &mut self.trace {
            trace.push(Step {
                thread: thread as u16,
                kind,
            });
        }
    }

    /// Fold the executed step's label into the transition coverage set.
    fn cover(&mut self, label: u64) {
        self.run_seen.insert(transition(self.last_label, label));
        self.last_label = label;
    }
}

/// FNV-style fold of one step into the running trace hash.
fn fold_step(mut h: u64, thread: usize, kind: &StepKind) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    };
    mix(thread as u64);
    match *kind {
        StepKind::Push { chan, n, denied } => {
            mix(1);
            mix(chan as u64);
            mix(n as u64);
            mix(denied as u64);
        }
        StepKind::Pop { chan, denied } => {
            mix(2);
            mix(chan as u64);
            mix(denied as u64);
        }
        StepKind::Park => mix(3),
        StepKind::Point { name } => {
            mix(4);
            mix(name as u64);
        }
        StepKind::Lane { lanes, start } => {
            mix(5);
            mix(lanes as u64);
            mix(start as u64);
        }
        StepKind::Exit => mix(6),
        StepKind::Crash => mix(7),
    }
    h
}

/// The seeded scheduler. Install with `orthrus_common::sim::install`,
/// then start the engine and enroll the client; see `crate::run_sim`.
pub struct SimScheduler {
    names: Vec<String>,
    name_hash: Vec<u64>,
    plan: FaultPlan,
    /// Pre-resolved [`CrashSpec::victim`] id (`None` when the victim
    /// name is not in the participant list — the crash then never fires,
    /// which the runner reports).
    crash_victim: Option<usize>,
    /// Coverage snapshot biasing the picker; `None` = uniform picks.
    snapshot: Option<HashSet<u64>>,
    state: Mutex<State>,
    cv: Condvar,
}

impl SimScheduler {
    /// `names` is the full expected participant set, in canonical order
    /// (thread ids are indexes into it — never registration order).
    pub fn new(seed: u64, names: Vec<String>, plan: FaultPlan, keep_trace: bool) -> Self {
        let n = names.len();
        assert!(n > 0, "a simulation needs at least one participant");
        let name_hash: Vec<u64> = names.iter().map(|s| fnv_str(s)).collect();
        let crash_victim = plan
            .crash
            .as_ref()
            .and_then(|c| names.iter().position(|n| *n == c.victim));
        // Every thread's first announced label is "about to start".
        let pending_label: Vec<u64> = name_hash.iter().map(|&h| fnv_mix(h, 8)).collect();
        SimScheduler {
            state: Mutex::new(State {
                registered: vec![false; n],
                live: vec![false; n],
                parked: vec![false; n],
                running: None,
                n_registered: 0,
                started: false,
                rng: XorShift64::new(seed ^ 0x0005_1EDD_5C4E_D01E),
                steps: 0,
                trace_hash: 0xcbf2_9ce4_8422_2325,
                perturbations: 0,
                budget_left: plan.budget,
                trace: keep_trace.then(Vec::new),
                chan_labels: Vec::new(),
                point_names: Vec::new(),
                unknown: Vec::new(),
                pending_label,
                last_label: 0,
                run_seen: HashSet::new(),
                crash_fired: false,
                restart_pending: 0,
                restart_group: Vec::new(),
            }),
            names,
            name_hash,
            plan,
            crash_victim,
            snapshot: None,
            cv: Condvar::new(),
        }
    }

    /// Bias this scheduler's picks toward transitions absent from
    /// `snapshot` (see the module docs). The schedule stays a pure
    /// function of `(seed, plan, snapshot)`.
    pub fn with_coverage(mut self, snapshot: HashSet<u64>) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// The canonical participant list for an engine shape plus
    /// `n_clients` driving client threads (`client`, `client1`, …).
    pub fn engine_names_with_clients(n_cc: usize, n_exec: usize, n_clients: usize) -> Vec<String> {
        assert!(n_clients >= 1, "a run needs a driving client");
        let mut names = Vec::with_capacity(n_cc + n_exec + n_clients);
        names.extend((0..n_cc).map(|i| format!("cc{i}")));
        names.extend((0..n_exec).map(|i| format!("exec{i}")));
        names.push("client".to_string());
        names.extend((1..n_clients).map(|i| format!("client{i}")));
        names
    }

    /// The canonical participant list for an engine shape plus the one
    /// driving client thread.
    pub fn engine_names(n_cc: usize, n_exec: usize) -> Vec<String> {
        Self::engine_names_with_clients(n_cc, n_exec, 1)
    }

    /// The participant names, in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Whether the plan's [`CrashSpec`] has fired yet. The driving
    /// client polls this to stop feeding an engine whose victim is dead.
    pub fn crash_fired(&self) -> bool {
        self.state.lock().unwrap().crash_fired
    }

    /// Announce that the named threads (all currently retired) will
    /// re-enroll for an in-sim restart. Call from the token-holding
    /// driver *before* spawning the replacement engine, then
    /// [`Self::await_restart`] after.
    pub fn expect_restart(&self, names: &[&str]) {
        let mut s = self.state.lock().unwrap();
        assert!(s.started, "restart before the initial barrier completed");
        for name in names {
            let id = self
                .names
                .iter()
                .position(|n| n == name)
                .unwrap_or_else(|| panic!("restart of unknown sim thread {name:?}"));
            assert!(
                s.registered[id] && !s.live[id],
                "restart target {name:?} is not a retired participant"
            );
            // Fresh generation, fresh first-label announcement.
            s.pending_label[id] = fnv_mix(self.name_hash[id], 8);
            s.restart_group.push(id);
        }
        s.restart_pending = s.restart_group.len();
    }

    /// Block until every announced restart thread has re-enrolled, then
    /// admit the whole group atomically. The caller holds the token
    /// throughout (re-enrollment does not need it), so arrival *order* —
    /// which the OS controls — never reaches the picker: the group
    /// becomes runnable in one deterministic instant.
    pub fn await_restart(&self) {
        let mut s = self.state.lock().unwrap();
        while s.restart_pending > 0 {
            s = self.cv.wait(s).unwrap();
        }
        let group = std::mem::take(&mut s.restart_group);
        for id in group {
            s.live[id] = true;
            s.parked[id] = true;
        }
    }

    /// Snapshot the schedule's observables. Meaningful once every
    /// participant has retired (the runner calls it after the client
    /// guard drops).
    pub fn report(&self) -> SchedReport {
        let s = self.state.lock().unwrap();
        SchedReport {
            steps: s.steps,
            trace_hash: s.trace_hash,
            perturbations: s.perturbations,
            trace: s.trace.clone(),
            chan_labels: s.chan_labels.clone(),
            point_names: s.point_names.clone(),
            unknown_registrations: s.unknown.clone(),
            transitions: s.run_seen.clone(),
            crashed: s.crash_fired,
        }
    }

    /// Pick the next runnable thread (parked ∧ live) — callers guarantee
    /// at least one candidate. With a coverage snapshot installed the
    /// draw is novelty-weighted over each candidate's announced label.
    fn pick_next(&self, s: &mut State) -> usize {
        let cands: Vec<usize> = (0..s.live.len())
            .filter(|&i| s.parked[i] && s.live[i])
            .collect();
        debug_assert!(!cands.is_empty(), "no runnable sim thread");
        let Some(snapshot) = &self.snapshot else {
            return cands[s.rng.next_below(cands.len() as u64) as usize];
        };
        let weights: Vec<u64> = cands
            .iter()
            .map(|&i| {
                let key = transition(s.last_label, s.pending_label[i]);
                if snapshot.contains(&key) || s.run_seen.contains(&key) {
                    1
                } else {
                    NOVELTY_WEIGHT
                }
            })
            .collect();
        let total: u64 = weights.iter().sum();
        let mut draw = s.rng.next_below(total);
        for (idx, &w) in weights.iter().enumerate() {
            if draw < w {
                return cands[idx];
            }
            draw -= w;
        }
        unreachable!("weighted draw out of range")
    }

    /// Hand the token to a seeded choice (possibly back to `me`) and
    /// block until it returns.
    fn yield_token<'a>(
        &'a self,
        mut s: std::sync::MutexGuard<'a, State>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, State> {
        s.parked[me] = true;
        let next = self.pick_next(&mut s);
        s.running = Some(next);
        if next != me {
            self.cv.notify_all();
            while s.running != Some(me) {
                s = self.cv.wait(s).unwrap();
            }
        }
        s.parked[me] = false;
        s
    }

    /// The stable label of `op` as executed by `thread` — name-based, so
    /// equal schedules hash equally across runs and participant lists.
    fn label_of(&self, thread: usize, op: &SimOp<'_>) -> u64 {
        let base = self.name_hash[thread];
        match op {
            SimOp::Push { label, .. } => fnv_mix(fnv_mix(base, 1), fnv_str(label)),
            SimOp::Pop { label, .. } => fnv_mix(fnv_mix(base, 2), fnv_str(label)),
            SimOp::Park => fnv_mix(base, 3),
            SimOp::Point { name } => fnv_mix(fnv_mix(base, 4), fnv_str(name)),
        }
    }
}

impl Scheduler for SimScheduler {
    fn register(&self, name: &str) -> Option<usize> {
        let Some(id) = self.names.iter().position(|n| n == name) else {
            self.state.lock().unwrap().unknown.push(name.to_string());
            return None;
        };
        let mut s = self.state.lock().unwrap();
        if s.started {
            // A restart re-enrollment (see `expect_restart`). The thread
            // is registered but waits for the driver to admit the whole
            // group — it only runs once granted the token like everyone
            // else.
            assert!(
                s.registered[id] && !s.live[id] && s.restart_group.contains(&id),
                "sim thread {name:?} enrolled twice"
            );
            s.restart_pending -= 1;
            if s.restart_pending == 0 {
                self.cv.notify_all();
            }
            while s.running != Some(id) {
                s = self.cv.wait(s).unwrap();
            }
            s.parked[id] = false;
            return Some(id);
        }
        assert!(!s.registered[id], "sim thread {name:?} enrolled twice");
        s.registered[id] = true;
        s.live[id] = true;
        s.parked[id] = true;
        s.n_registered += 1;
        if s.n_registered == self.names.len() {
            // Barrier complete: grant the first token. From here on the
            // execution is serialized and seed-deterministic.
            s.started = true;
            let first = self.pick_next(&mut s);
            s.running = Some(first);
            self.cv.notify_all();
        }
        while s.running != Some(id) {
            s = self.cv.wait(s).unwrap();
        }
        s.parked[id] = false;
        Some(id)
    }

    fn unregister(&self, thread: usize) {
        let mut s = self.state.lock().unwrap();
        debug_assert_eq!(s.running, Some(thread), "retiring thread lacks the token");
        let exit_label = fnv_mix(self.name_hash[thread], 9);
        s.cover(exit_label);
        s.record(thread, StepKind::Exit);
        s.live[thread] = false;
        s.parked[thread] = false;
        let any_left = (0..s.live.len()).any(|i| s.parked[i] && s.live[i]);
        s.running = if any_left {
            Some(self.pick_next(&mut s))
        } else {
            None
        };
        self.cv.notify_all();
    }

    fn reached(&self, thread: usize, op: SimOp<'_>) -> SimDecision {
        let mut s = self.state.lock().unwrap();
        debug_assert_eq!(
            s.running,
            Some(thread),
            "hook from a thread without the token"
        );
        // Announce what this thread is about to do, then yield: the
        // picker sees every parked thread's next transition.
        let label = self.label_of(thread, &op);
        s.pending_label[thread] = label;
        let mut s = self.yield_token(s, thread);

        // Token regained: this step now executes. Crash check first — a
        // crashed thread takes no further operation.
        if let Some(spec) = &self.plan.crash {
            if !s.crash_fired && self.crash_victim == Some(thread) && s.steps >= spec.at_step {
                s.crash_fired = true;
                s.cover(fnv_mix(self.name_hash[thread], 10));
                s.record(thread, StepKind::Crash);
                return SimDecision::Crash;
            }
        }
        s.cover(label);
        let proceed = match op {
            SimOp::Push { chan, label, n } => {
                let eligible = PUSH_FAULTABLE.contains(&label);
                let denied = eligible && s.try_fire(&self.plan, self.plan.deny_push_pct);
                s.record(
                    thread,
                    StepKind::Push {
                        chan,
                        n: n as u32,
                        denied,
                    },
                );
                !denied
            }
            SimOp::Pop { chan, label } => {
                let eligible = self
                    .plan
                    .delay_labels
                    .as_ref()
                    .is_none_or(|ls| ls.iter().any(|l| l == label));
                let denied = eligible && s.try_fire(&self.plan, self.plan.delay_pct);
                s.record(thread, StepKind::Pop { chan, denied });
                !denied
            }
            SimOp::Park => {
                s.record(thread, StepKind::Park);
                true
            }
            SimOp::Point { name } => {
                let idx = match s.point_names.iter().position(|p| p == name) {
                    Some(i) => i,
                    None => {
                        s.point_names.push(name.to_string());
                        s.point_names.len() - 1
                    }
                };
                s.record(thread, StepKind::Point { name: idx as u32 });
                true
            }
        };
        if proceed {
            SimDecision::Proceed
        } else {
            SimDecision::Deny
        }
    }

    fn peer_live(&self, name: &str) -> Option<bool> {
        let id = self.names.iter().position(|n| n == name)?;
        let s = self.state.lock().unwrap();
        Some(s.registered[id] && s.live[id])
    }

    fn fanin_start(&self, thread: usize, lanes: usize) -> Option<usize> {
        if !self.plan.shuffle_lanes || lanes < 2 {
            return None;
        }
        let mut s = self.state.lock().unwrap();
        if !s.try_fire(&self.plan, 100) {
            return None;
        }
        let start = s.rng.next_below(lanes as u64) as usize;
        s.record(
            thread,
            StepKind::Lane {
                lanes: lanes as u32,
                start: start as u32,
            },
        );
        Some(start)
    }

    fn alloc_chan(&self, label: &'static str) -> ChanId {
        let mut s = self.state.lock().unwrap();
        s.chan_labels.push(label);
        s.chan_labels.len() as ChanId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_spec_roundtrips() {
        let plans = [
            FaultPlan::default(),
            FaultPlan {
                delay_pct: 30,
                deny_push_pct: 10,
                shuffle_lanes: true,
                delay_labels: Some(vec!["cc_cc".to_string(), "cc_exec".to_string()]),
                budget: Some(25),
                soft_cap: 500_000,
                crash: Some(CrashSpec {
                    victim: "exec0".to_string(),
                    at_step: 500,
                }),
            },
            FaultPlan {
                crash: Some(CrashSpec {
                    victim: "sync".to_string(),
                    at_step: 1,
                }),
                ..FaultPlan::default()
            },
        ];
        for plan in plans {
            let spec = plan.to_spec();
            let back: FaultPlan = spec.parse().unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert_eq!(back, plan, "spec {spec:?}");
        }
        assert!("crash=exec0".parse::<FaultPlan>().is_err());
        assert!("warp=9".parse::<FaultPlan>().is_err());
        assert_eq!("".parse::<FaultPlan>().unwrap(), FaultPlan::default());
    }
}
