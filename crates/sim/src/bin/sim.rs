//! The simulation harness CLI.
//!
//! ```text
//! sim explore --seeds N [--base B] [--txns T] [--guided] [--verbose]
//! sim run --seed S [--budget B] [--txns T] [--keep I,J,K] [--plan SPEC] [--trace]
//! sim crash --seeds N [--base B]
//! sim coverage --seeds N [--base B] [--txns T] [--out FILE]
//! sim net --seeds N [--base B]
//! sim part --seeds N [--base B]
//! ```
//!
//! `explore` sweeps seeds and exits nonzero if any run violates an
//! invariant, printing each failure with its shrunken transaction list,
//! minimized fault budget, and a replayable trace tail; `--guided`
//! biases every seed's scheduler toward handoff transitions the sweep
//! has not covered yet. `run` replays one reproduction line. `crash`
//! sweeps the mid-run crash-restart corpus (kill one engine thread,
//! recover in-sim; see `orthrus_sim::crash`). `coverage` runs the same
//! seed range uniform *and* guided and fails unless guidance covered
//! strictly more transitions — the CI gate for the guided picker. `net`
//! sweeps the TCP front-door corpus, `part` the partitioned-deployment
//! corpus.

use orthrus_sim::{
    explore, run_crash_sim, run_net_sim, run_part_sim, run_sim, CrashSimConfig, FaultPlan,
    NetSimConfig, PartSimConfig, SimConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  sim explore --seeds N [--base B] [--txns T] [--guided] [--verbose]\n  \
         sim run --seed S [--budget B] [--txns T] [--keep I,J,K] [--plan SPEC] [--trace]\n  \
         sim crash --seeds N [--base B]\n  \
         sim coverage --seeds N [--base B] [--txns T] [--out FILE]\n  \
         sim net --seeds N [--base B]\n  \
         sim part --seeds N [--base B]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a valid argument");
        usage()
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| usage());
    let mut seeds: Option<u64> = None;
    let mut base: u64 = 1;
    let mut seed: Option<u64> = None;
    let mut budget: Option<u64> = None;
    let mut txns: Option<usize> = None;
    let mut keep: Option<Vec<u32>> = None;
    let mut plan: Option<FaultPlan> = None;
    let mut out_file: Option<String> = None;
    let mut trace = false;
    let mut verbose = false;
    let mut guided = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--seeds" => seeds = Some(parse(&flag, args.next())),
            "--base" => base = parse(&flag, args.next()),
            "--seed" => seed = Some(parse(&flag, args.next())),
            "--budget" => budget = Some(parse(&flag, args.next())),
            "--txns" => txns = Some(parse(&flag, args.next())),
            "--keep" => {
                let list: String = parse(&flag, args.next());
                let parsed: Result<Vec<u32>, _> = list.split(',').map(str::parse::<u32>).collect();
                keep = Some(parsed.unwrap_or_else(|_| {
                    eprintln!("--keep wants a comma-separated index list, got {list:?}");
                    usage()
                }));
            }
            "--plan" => {
                let spec: String = parse(&flag, args.next());
                plan = Some(spec.parse().unwrap_or_else(|e| {
                    eprintln!("--plan: {e}");
                    usage()
                }));
            }
            "--out" => out_file = Some(parse(&flag, args.next())),
            "--trace" => trace = true,
            "--verbose" => verbose = true,
            "--guided" => guided = true,
            _ => usage(),
        }
    }

    match cmd.as_str() {
        "explore" => {
            let count = seeds.unwrap_or_else(|| usage());
            let report = explore(base, count, txns, verbose, guided);
            let mode = if guided { "guided" } else { "uniform" };
            let plateau = if report.plateau {
                " (coverage plateaued — consider a different corpus)"
            } else {
                ""
            };
            if report.ok() {
                println!(
                    "explored {} seeds ({base}..{}, {mode}): all invariants held, \
                     {} transitions covered{plateau}",
                    report.seeds_run,
                    base + count,
                    report.transitions_covered,
                );
            } else {
                for failure in &report.failures {
                    println!("{failure}");
                }
                println!(
                    "explored {} seeds ({mode}, {} transitions covered{plateau}): {} FAILED",
                    report.seeds_run,
                    report.transitions_covered,
                    report.failures.len()
                );
                std::process::exit(1);
            }
        }
        "run" => {
            let seed = seed.unwrap_or_else(|| usage());
            let mut cfg = SimConfig::from_seed(seed);
            if let Some(t) = txns {
                cfg.txns = t;
            }
            if let Some(p) = plan {
                cfg.plan = p;
            }
            if let Some(b) = budget {
                cfg.plan = cfg.plan.with_budget(b);
            }
            cfg.keep = keep;
            let out = run_sim(&cfg, trace);
            println!(
                "seed {seed}: {} steps, {} faults, {} committed, trace hash {:#018x}",
                out.steps, out.perturbations, out.committed, out.trace_hash
            );
            if trace {
                print!("{}", out.report.render_tail(&out.thread_names, 40));
            }
            if !out.violations.is_empty() {
                for v in &out.violations {
                    println!("violation: {v}");
                }
                std::process::exit(1);
            }
        }
        "crash" => {
            let count = seeds.unwrap_or_else(|| usage());
            let mut failed = 0u64;
            let mut fired = 0u64;
            for seed in base..base + count {
                let cfg = CrashSimConfig::from_seed(seed);
                let victim = cfg
                    .plan
                    .crash
                    .as_ref()
                    .map_or_else(|| "?".to_string(), |c| c.victim.clone());
                let out = run_crash_sim(&cfg, false);
                println!(
                    "seed {seed}: {} steps, victim {victim}, crashed={}, {} replayed",
                    out.steps, out.crashed, out.replayed
                );
                for v in &out.violations {
                    println!("violation: {v}");
                }
                fired += u64::from(out.crashed);
                failed += u64::from(!out.violations.is_empty());
            }
            if failed > 0 {
                println!("crash corpus: {failed} of {count} seeds FAILED");
                std::process::exit(1);
            }
            println!(
                "crash corpus: {count} seeds ({base}..{}): {fired} crashes fired \
                 and recovered, all invariants held",
                base + count
            );
        }
        "coverage" => {
            let count = seeds.unwrap_or_else(|| usage());
            let uniform = explore(base, count, txns, false, false);
            let guided_sweep = explore(base, count, txns, false, true);
            let lines = format!(
                "coverage at {count} seeds (base {base}):\n  uniform: {} transitions\n  \
                 guided:  {} transitions\n  uniform growth: {:?}\n  guided growth:  {:?}\n",
                uniform.transitions_covered,
                guided_sweep.transitions_covered,
                uniform.growth,
                guided_sweep.growth,
            );
            print!("{lines}");
            if let Some(path) = out_file {
                if let Err(e) = std::fs::write(&path, &lines) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                }
            }
            if !uniform.ok() || !guided_sweep.ok() {
                println!("coverage: invariant FAILURES during the sweeps");
                std::process::exit(1);
            }
            if guided_sweep.transitions_covered <= uniform.transitions_covered {
                println!(
                    "coverage: guided sweep must cover strictly more transitions \
                     than uniform at equal seeds"
                );
                std::process::exit(1);
            }
            println!("coverage: guided strictly exceeds uniform");
        }
        "net" => {
            let count = seeds.unwrap_or_else(|| usage());
            let mut failed = 0u64;
            for seed in base..base + count {
                let cfg = NetSimConfig::from_seed(seed);
                let out = run_net_sim(&cfg);
                println!(
                    "seed {seed}: {} steps, {} faults, {} committed, {} delivered over TCP, \
                     {} transitions",
                    out.steps,
                    out.perturbations,
                    out.committed,
                    out.delivered,
                    out.report.transitions.len()
                );
                for v in &out.violations {
                    println!("violation: {v}");
                }
                failed += u64::from(!out.violations.is_empty());
            }
            if failed > 0 {
                println!("net corpus: {failed} of {count} seeds FAILED");
                std::process::exit(1);
            }
            println!(
                "net corpus: {count} seeds ({base}..{}): all invariants held",
                base + count
            );
        }
        "part" => {
            let count = seeds.unwrap_or_else(|| usage());
            let mut failed = 0u64;
            for seed in base..base + count {
                let cfg = PartSimConfig::from_seed(seed);
                let out = run_part_sim(&cfg);
                println!(
                    "seed {seed}: {} steps, {} faults, {} accepted ({} cross-partition), \
                     {} epochs logged, {} transitions",
                    out.steps,
                    out.perturbations,
                    out.accepted,
                    out.cross,
                    out.epochs_logged,
                    out.report.transitions.len()
                );
                for v in &out.violations {
                    println!("violation: {v}");
                }
                failed += u64::from(!out.violations.is_empty());
            }
            if failed > 0 {
                println!("part corpus: {failed} of {count} seeds FAILED");
                std::process::exit(1);
            }
            println!(
                "part corpus: {count} seeds ({base}..{}): all invariants held",
                base + count
            );
        }
        _ => usage(),
    }
}
