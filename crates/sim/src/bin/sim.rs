//! The simulation harness CLI.
//!
//! ```text
//! sim explore --seeds N [--base B] [--txns T] [--verbose]
//! sim run --seed S [--budget B] [--txns T] [--trace]
//! sim net --seeds N [--base B]
//! sim part --seeds N [--base B]
//! ```
//!
//! `explore` sweeps seeds and exits nonzero if any run violates an
//! invariant, printing each failure with its minimized fault budget and
//! a replayable trace tail. `run` replays one `(seed, budget)` pair —
//! the reproduction line `explore` prints. `net` sweeps the TCP
//! front-door corpus (convergence + conservation; see
//! `orthrus_sim::net`). `part` sweeps the partitioned-deployment corpus
//! (cross-partition conservation + epoch-ordered replay; see
//! `orthrus_sim::part`).

use orthrus_sim::{
    explore, run_net_sim, run_part_sim, run_sim, NetSimConfig, PartSimConfig, SimConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  sim explore --seeds N [--base B] [--txns T] [--verbose]\n  \
         sim run --seed S [--budget B] [--txns T] [--trace]\n  \
         sim net --seeds N [--base B]\n  \
         sim part --seeds N [--base B]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a numeric argument");
        usage()
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| usage());
    let mut seeds: Option<u64> = None;
    let mut base: u64 = 1;
    let mut seed: Option<u64> = None;
    let mut budget: Option<u64> = None;
    let mut txns: Option<usize> = None;
    let mut trace = false;
    let mut verbose = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--seeds" => seeds = Some(parse(&flag, args.next())),
            "--base" => base = parse(&flag, args.next()),
            "--seed" => seed = Some(parse(&flag, args.next())),
            "--budget" => budget = Some(parse(&flag, args.next())),
            "--txns" => txns = Some(parse(&flag, args.next())),
            "--trace" => trace = true,
            "--verbose" => verbose = true,
            _ => usage(),
        }
    }

    match cmd.as_str() {
        "explore" => {
            let count = seeds.unwrap_or_else(|| usage());
            let report = explore(base, count, txns, verbose);
            if report.ok() {
                println!(
                    "explored {} seeds ({base}..{}): all invariants held",
                    report.seeds_run,
                    base + count
                );
            } else {
                for failure in &report.failures {
                    println!("{failure}");
                }
                println!(
                    "explored {} seeds: {} FAILED",
                    report.seeds_run,
                    report.failures.len()
                );
                std::process::exit(1);
            }
        }
        "run" => {
            let seed = seed.unwrap_or_else(|| usage());
            let mut cfg = SimConfig::from_seed(seed);
            if let Some(t) = txns {
                cfg.txns = t;
            }
            if let Some(b) = budget {
                cfg.plan = cfg.plan.with_budget(b);
            }
            let out = run_sim(&cfg, trace);
            println!(
                "seed {seed}: {} steps, {} faults, {} committed, trace hash {:#018x}",
                out.steps, out.perturbations, out.committed, out.trace_hash
            );
            if trace {
                print!("{}", out.report.render_tail(&out.thread_names, 40));
            }
            if !out.violations.is_empty() {
                for v in &out.violations {
                    println!("violation: {v}");
                }
                std::process::exit(1);
            }
        }
        "net" => {
            let count = seeds.unwrap_or_else(|| usage());
            let mut failed = 0u64;
            for seed in base..base + count {
                let cfg = NetSimConfig::from_seed(seed);
                let out = run_net_sim(&cfg);
                println!(
                    "seed {seed}: {} steps, {} faults, {} committed, {} delivered over TCP",
                    out.steps, out.perturbations, out.committed, out.delivered
                );
                for v in &out.violations {
                    println!("violation: {v}");
                }
                failed += u64::from(!out.violations.is_empty());
            }
            if failed > 0 {
                println!("net corpus: {failed} of {count} seeds FAILED");
                std::process::exit(1);
            }
            println!(
                "net corpus: {count} seeds ({base}..{}): all invariants held",
                base + count
            );
        }
        "part" => {
            let count = seeds.unwrap_or_else(|| usage());
            let mut failed = 0u64;
            for seed in base..base + count {
                let cfg = PartSimConfig::from_seed(seed);
                let out = run_part_sim(&cfg);
                println!(
                    "seed {seed}: {} steps, {} faults, {} accepted ({} cross-partition), \
                     {} epochs logged",
                    out.steps, out.perturbations, out.accepted, out.cross, out.epochs_logged
                );
                for v in &out.violations {
                    println!("violation: {v}");
                }
                failed += u64::from(!out.violations.is_empty());
            }
            if failed > 0 {
                println!("part corpus: {failed} of {count} seeds FAILED");
                std::process::exit(1);
            }
            println!(
                "part corpus: {count} seeds ({base}..{}): all invariants held",
                base + count
            );
        }
        _ => usage(),
    }
}
