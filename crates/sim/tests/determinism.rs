//! The simulation layer's own contract tests.
//!
//! 1. **Determinism pin** (proptest): the same seed and configuration
//!    produce a bit-identical step trace (equal order-sensitive hashes,
//!    equal step counts) *and* bit-identical final table state across
//!    two independent runs — the property every `sim run --seed S`
//!    reproduction line depends on.
//! 2. **Grant reorder regression**: delaying and reordering lock-grant
//!    forwarding between CC threads (pop-delay + lane shuffle on the
//!    `cc_cc`/`cc_exec` rings) must not lose, duplicate, or misorder the
//!    admitted stream — ticket conservation and the serializability
//!    witnesses hold under schedules threaded tests cannot express.
//! 3. **Explorer smoke**: a small seed sweep runs clean end to end.

use proptest::prelude::*;

use orthrus_core::{AdmissionPolicy, DurabilityMode, SyncInterval};
use orthrus_sim::{explore, run_sim, FaultPlan, SimConfig, WorkloadKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed + config ⇒ bit-identical schedule and state.
    #[test]
    fn same_seed_replays_bit_identically(seed in 1u64..5000) {
        let cfg = SimConfig::from_seed(seed);
        let a = run_sim(&cfg, false);
        let b = run_sim(&cfg, false);
        prop_assert_eq!(a.trace_hash, b.trace_hash, "schedules diverged");
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.perturbations, b.perturbations);
        prop_assert_eq!(a.state_digest, b.state_digest, "table state diverged");
        prop_assert_eq!(a.committed, b.committed);
    }
}

#[test]
fn capped_budget_replays_bit_identically() {
    // The minimizer's premise: (seed, budget) pins the whole run too.
    let mut cfg = SimConfig::from_seed(42);
    cfg.plan = cfg.plan.with_budget(25);
    let a = run_sim(&cfg, true);
    let b = run_sim(&cfg, true);
    assert_eq!(a.trace_hash, b.trace_hash);
    assert_eq!(a.report.trace, b.report.trace, "step-for-step replay");
    assert_eq!(a.state_digest, b.state_digest);
}

/// Heavy delay/reordering restricted to the CC→CC forwarding and CC→exec
/// grant rings, across all three admission policies.
#[test]
fn delayed_and_reordered_grant_forwarding_conserves_admitted_stream() {
    let policies = [
        AdmissionPolicy::Fifo,
        AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 4,
        },
        AdmissionPolicy::Adaptive {
            classes: 4,
            max_batch: 4,
            threshold_pct: 5,
            hysteresis: 1,
            epoch: 16,
        },
    ];
    for (i, admission) in policies.into_iter().enumerate() {
        for seed in [3, 17, 91] {
            // Multi-CC shape with forwarding on: grants for a
            // multi-partition transaction travel cc→cc before the final
            // cc→exec hop, so delays here reorder the grant stream the
            // deadlock-freedom argument depends on.
            let cfg = SimConfig {
                seed,
                txns: 32,
                n_cc: 3,
                n_exec: 2,
                max_inflight: 3,
                flush_threshold: 4,
                ingest_capacity: 16,
                admission: admission.clone(),
                durability: DurabilityMode::Off,
                sync_interval: SyncInterval::PerRun,
                checkpoint_bytes: None,
                shared_table: false,
                forwarding: true,
                workload: WorkloadKind::MicroHot,
                n_clients: 1,
                keep: None,
                poison: None,
                plan: FaultPlan {
                    delay_pct: 40,
                    deny_push_pct: 0,
                    shuffle_lanes: true,
                    delay_labels: Some(vec!["cc_cc".to_string(), "cc_exec".to_string()]),
                    ..FaultPlan::default()
                },
            };
            let out = run_sim(&cfg, false);
            assert!(
                out.violations.is_empty(),
                "policy {i}, seed {seed}: {:?}",
                out.violations
            );
            assert_eq!(out.committed, 32, "policy {i}, seed {seed}");
            assert!(
                out.perturbations > 0,
                "policy {i}, seed {seed}: the fault plan never fired"
            );
        }
    }
}

/// Durable mode under the same grant perturbations: the replay pin
/// inside `run_sim` additionally checks log completeness.
#[test]
fn delayed_grants_with_durability_replay_cleanly() {
    let cfg = SimConfig {
        seed: 7,
        txns: 28,
        n_cc: 2,
        n_exec: 2,
        max_inflight: 3,
        flush_threshold: 4,
        ingest_capacity: 16,
        admission: AdmissionPolicy::Fifo,
        durability: DurabilityMode::Log,
        sync_interval: SyncInterval::PerRun,
        checkpoint_bytes: None,
        shared_table: false,
        forwarding: true,
        workload: WorkloadKind::MicroUniform,
        n_clients: 1,
        keep: None,
        poison: None,
        plan: FaultPlan {
            delay_pct: 30,
            deny_push_pct: 10,
            shuffle_lanes: true,
            ..FaultPlan::default()
        },
    };
    let out = run_sim(&cfg, false);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
}

/// Rung-2 durability under the scheduler: the group-fsync coordinator
/// and the fuzzy checkpointer enroll as `sync`/`ckpt` participants, the
/// run stays violation-free under grant faults, and the whole thing —
/// watermark handoffs, sync batching, checkpoint timing — replays
/// bit-identically from the seed.
#[test]
fn group_fsync_and_checkpoints_replay_deterministically_under_faults() {
    for interval in [SyncInterval::Adaptive, SyncInterval::FixedMicros(50)] {
        let cfg = SimConfig {
            seed: 11,
            txns: 32,
            n_cc: 2,
            n_exec: 2,
            max_inflight: 3,
            flush_threshold: 4,
            ingest_capacity: 16,
            admission: AdmissionPolicy::ConflictBatch {
                classes: 4,
                batch: 4,
            },
            durability: DurabilityMode::LogFsync,
            sync_interval: interval,
            checkpoint_bytes: Some(192),
            shared_table: false,
            forwarding: true,
            workload: WorkloadKind::MicroHot,
            n_clients: 1,
            keep: None,
            poison: None,
            plan: FaultPlan {
                delay_pct: 30,
                deny_push_pct: 10,
                shuffle_lanes: true,
                ..FaultPlan::default()
            },
        };
        let a = run_sim(&cfg, false);
        assert!(a.violations.is_empty(), "{interval:?}: {:?}", a.violations);
        assert!(
            a.thread_names.iter().any(|n| n == "sync"),
            "coordinator not enrolled"
        );
        assert!(
            a.thread_names.iter().any(|n| n == "ckpt"),
            "checkpointer not enrolled"
        );
        let b = run_sim(&cfg, false);
        assert_eq!(
            a.trace_hash, b.trace_hash,
            "{interval:?}: schedule diverged"
        );
        assert_eq!(a.state_digest, b.state_digest);
    }
}

#[test]
fn explorer_smoke() {
    let report = explore(9000, 6, Some(12), false, false);
    assert_eq!(report.seeds_run, 6);
    assert!(
        report.failures.is_empty(),
        "{}",
        report
            .failures
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Guided runs are as deterministic as uniform ones: the snapshot is
    /// part of the run's input, so `(seed, budget, snapshot)` pins the
    /// schedule and the final state bit-for-bit. This is what makes a
    /// `sim explore --guided` failure reproducible at all.
    #[test]
    fn guided_runs_replay_bit_identically(seed in 1u64..2000) {
        use orthrus_sim::run_sim_guided;
        // The snapshot a second seed would see mid-sweep: the first
        // run's transition set.
        let first = run_sim(&SimConfig::from_seed(seed), false);
        let snapshot = first.report.transitions.clone();
        let cfg = SimConfig::from_seed(seed + 1);
        let a = run_sim_guided(&cfg, false, Some(snapshot.clone()));
        let b = run_sim_guided(&cfg, false, Some(snapshot));
        prop_assert_eq!(a.trace_hash, b.trace_hash, "seed {}: schedule diverged", seed);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.state_digest, b.state_digest, "seed {}: state diverged", seed);
        // And the snapshot genuinely steered: a guided run is a
        // *different* pure function than the uniform one (it may
        // coincide for some seed, so assert only on the pinned pair).
        prop_assert_eq!(a.committed, b.committed);
    }

    /// The crash-restart corpus is deterministic *across the restart
    /// boundary*: both generations — the kill, the in-sim recovery, the
    /// post-restart batch — hash into one schedule that replays
    /// bit-identically from the seed.
    #[test]
    fn crash_runs_replay_bit_identically(seed in 1u64..64) {
        use orthrus_sim::{run_crash_sim, CrashSimConfig};
        let cfg = CrashSimConfig::from_seed(seed);
        let a = run_crash_sim(&cfg, false);
        let b = run_crash_sim(&cfg, false);
        prop_assert_eq!(a.crashed, b.crashed, "seed {}", seed);
        prop_assert_eq!(a.trace_hash, b.trace_hash, "seed {}: schedule diverged", seed);
        prop_assert_eq!(a.steps, b.steps, "seed {}", seed);
        prop_assert_eq!(a.replayed, b.replayed, "seed {}", seed);
        prop_assert_eq!(a.state_digest, b.state_digest, "seed {}: state diverged", seed);
    }
}

/// An execution-thread crash mid-run recovers inside the same
/// simulation: the victim dies at its scheduled step, recovery replays
/// the log in-sim, the restarted engine completes a post-crash batch,
/// and every durability invariant holds (seed 1 is pinned to an `exec0`
/// victim whose crash fires).
#[test]
fn exec_thread_crash_recovers_in_sim() {
    use orthrus_sim::{run_crash_sim, CrashSimConfig};
    let cfg = CrashSimConfig::from_seed(1);
    assert_eq!(
        cfg.plan.crash.as_ref().map(|c| c.victim.as_str()),
        Some("exec0")
    );
    let out = run_crash_sim(&cfg, false);
    assert!(out.crashed, "the scheduled crash must fire for this seed");
    assert!(out.violations.is_empty(), "{:?}", out.violations);
}

/// Same, with the group-fsync coordinator as the victim: exec threads
/// must fail loudly (not hang) when the sync watermark dies with it, and
/// recovery must still replay exactly the durable prefix (seed 2 is
/// pinned to a `sync` victim whose crash fires).
#[test]
fn sync_coordinator_crash_recovers_in_sim() {
    use orthrus_sim::{run_crash_sim, CrashSimConfig};
    let cfg = CrashSimConfig::from_seed(2);
    assert_eq!(
        cfg.plan.crash.as_ref().map(|c| c.victim.as_str()),
        Some("sync")
    );
    let out = run_crash_sim(&cfg, false);
    assert!(out.crashed, "the scheduled crash must fire for this seed");
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert!(
        out.thread_names.iter().any(|n| n == "sync"),
        "coordinator not enrolled"
    );
}

/// Multiple enrolled client threads submitting interleaved slices of one
/// workload: ticket conservation and the exact per-key model hold across
/// all three admission policies, and the whole thing replays from the
/// seed.
#[test]
fn multi_client_sessions_conserve_under_all_admission_policies() {
    let policies = [
        AdmissionPolicy::Fifo,
        AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 4,
        },
        AdmissionPolicy::Adaptive {
            classes: 4,
            max_batch: 4,
            threshold_pct: 5,
            hysteresis: 1,
            epoch: 16,
        },
    ];
    for (i, admission) in policies.into_iter().enumerate() {
        let cfg = SimConfig {
            seed: 61,
            txns: 30,
            n_clients: 3,
            n_cc: 2,
            n_exec: 2,
            max_inflight: 3,
            flush_threshold: 4,
            ingest_capacity: 16,
            admission,
            durability: DurabilityMode::Log,
            sync_interval: SyncInterval::PerRun,
            checkpoint_bytes: None,
            shared_table: false,
            forwarding: true,
            workload: WorkloadKind::MicroUniform,
            keep: None,
            poison: None,
            plan: FaultPlan {
                delay_pct: 20,
                deny_push_pct: 10,
                shuffle_lanes: true,
                ..FaultPlan::default()
            },
        };
        let a = run_sim(&cfg, false);
        assert!(a.violations.is_empty(), "policy {i}: {:?}", a.violations);
        assert_eq!(a.committed, 30, "policy {i}: every submission completes");
        let b = run_sim(&cfg, false);
        assert_eq!(a.trace_hash, b.trace_hash, "policy {i}: schedule diverged");
        assert_eq!(a.state_digest, b.state_digest);
    }
}

/// The workload shrinker on a hand-seeded failure: poison a hot key so
/// the invariant trips once a handful of transactions have bumped it,
/// then check the delta debugger cuts the repro to single digits.
#[test]
fn poisoned_run_shrinks_to_single_digit_transactions() {
    use orthrus_sim::minimize;
    let mut cfg = SimConfig::from_seed(77);
    cfg.workload = WorkloadKind::MicroHot;
    cfg.txns = 40;
    cfg.n_clients = 1;
    cfg.keep = None;
    cfg.poison = Some((0, 3));
    let out = run_sim(&cfg, false);
    assert!(
        out.violations.iter().any(|v| v.contains("poison")),
        "the poisoned key must trip on the full run: {:?}",
        out.violations
    );
    let report = minimize(&cfg, out, None);
    let kept = report
        .kept
        .as_ref()
        .expect("a 3-hit poison must shrink below 40 transactions");
    assert!(
        kept.len() <= 10,
        "shrunken repro should be single-digit transactions, got {}",
        kept.len()
    );
    assert!(
        report.violations.iter().any(|v| v.contains("poison")),
        "the shrunken repro must still trip the poison: {:?}",
        report.violations
    );
}
