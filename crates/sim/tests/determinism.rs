//! The simulation layer's own contract tests.
//!
//! 1. **Determinism pin** (proptest): the same seed and configuration
//!    produce a bit-identical step trace (equal order-sensitive hashes,
//!    equal step counts) *and* bit-identical final table state across
//!    two independent runs — the property every `sim run --seed S`
//!    reproduction line depends on.
//! 2. **Grant reorder regression**: delaying and reordering lock-grant
//!    forwarding between CC threads (pop-delay + lane shuffle on the
//!    `cc_cc`/`cc_exec` rings) must not lose, duplicate, or misorder the
//!    admitted stream — ticket conservation and the serializability
//!    witnesses hold under schedules threaded tests cannot express.
//! 3. **Explorer smoke**: a small seed sweep runs clean end to end.

use proptest::prelude::*;

use orthrus_core::{AdmissionPolicy, DurabilityMode, SyncInterval};
use orthrus_sim::{explore, run_sim, FaultPlan, SimConfig, WorkloadKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed + config ⇒ bit-identical schedule and state.
    #[test]
    fn same_seed_replays_bit_identically(seed in 1u64..5000) {
        let cfg = SimConfig::from_seed(seed);
        let a = run_sim(&cfg, false);
        let b = run_sim(&cfg, false);
        prop_assert_eq!(a.trace_hash, b.trace_hash, "schedules diverged");
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.perturbations, b.perturbations);
        prop_assert_eq!(a.state_digest, b.state_digest, "table state diverged");
        prop_assert_eq!(a.committed, b.committed);
    }
}

#[test]
fn capped_budget_replays_bit_identically() {
    // The minimizer's premise: (seed, budget) pins the whole run too.
    let mut cfg = SimConfig::from_seed(42);
    cfg.plan = cfg.plan.with_budget(25);
    let a = run_sim(&cfg, true);
    let b = run_sim(&cfg, true);
    assert_eq!(a.trace_hash, b.trace_hash);
    assert_eq!(a.report.trace, b.report.trace, "step-for-step replay");
    assert_eq!(a.state_digest, b.state_digest);
}

/// Heavy delay/reordering restricted to the CC→CC forwarding and CC→exec
/// grant rings, across all three admission policies.
#[test]
fn delayed_and_reordered_grant_forwarding_conserves_admitted_stream() {
    let policies = [
        AdmissionPolicy::Fifo,
        AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 4,
        },
        AdmissionPolicy::Adaptive {
            classes: 4,
            max_batch: 4,
            threshold_pct: 5,
            hysteresis: 1,
            epoch: 16,
        },
    ];
    for (i, admission) in policies.into_iter().enumerate() {
        for seed in [3, 17, 91] {
            // Multi-CC shape with forwarding on: grants for a
            // multi-partition transaction travel cc→cc before the final
            // cc→exec hop, so delays here reorder the grant stream the
            // deadlock-freedom argument depends on.
            let cfg = SimConfig {
                seed,
                txns: 32,
                n_cc: 3,
                n_exec: 2,
                max_inflight: 3,
                flush_threshold: 4,
                ingest_capacity: 16,
                admission: admission.clone(),
                durability: DurabilityMode::Off,
                sync_interval: SyncInterval::PerRun,
                checkpoint_bytes: None,
                shared_table: false,
                forwarding: true,
                workload: WorkloadKind::MicroHot,
                plan: FaultPlan {
                    delay_pct: 40,
                    deny_push_pct: 0,
                    shuffle_lanes: true,
                    delay_labels: Some(vec!["cc_cc".to_string(), "cc_exec".to_string()]),
                    ..FaultPlan::default()
                },
            };
            let out = run_sim(&cfg, false);
            assert!(
                out.violations.is_empty(),
                "policy {i}, seed {seed}: {:?}",
                out.violations
            );
            assert_eq!(out.committed, 32, "policy {i}, seed {seed}");
            assert!(
                out.perturbations > 0,
                "policy {i}, seed {seed}: the fault plan never fired"
            );
        }
    }
}

/// Durable mode under the same grant perturbations: the replay pin
/// inside `run_sim` additionally checks log completeness.
#[test]
fn delayed_grants_with_durability_replay_cleanly() {
    let cfg = SimConfig {
        seed: 7,
        txns: 28,
        n_cc: 2,
        n_exec: 2,
        max_inflight: 3,
        flush_threshold: 4,
        ingest_capacity: 16,
        admission: AdmissionPolicy::Fifo,
        durability: DurabilityMode::Log,
        sync_interval: SyncInterval::PerRun,
        checkpoint_bytes: None,
        shared_table: false,
        forwarding: true,
        workload: WorkloadKind::MicroUniform,
        plan: FaultPlan {
            delay_pct: 30,
            deny_push_pct: 10,
            shuffle_lanes: true,
            ..FaultPlan::default()
        },
    };
    let out = run_sim(&cfg, false);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
}

/// Rung-2 durability under the scheduler: the group-fsync coordinator
/// and the fuzzy checkpointer enroll as `sync`/`ckpt` participants, the
/// run stays violation-free under grant faults, and the whole thing —
/// watermark handoffs, sync batching, checkpoint timing — replays
/// bit-identically from the seed.
#[test]
fn group_fsync_and_checkpoints_replay_deterministically_under_faults() {
    for interval in [SyncInterval::Adaptive, SyncInterval::FixedMicros(50)] {
        let cfg = SimConfig {
            seed: 11,
            txns: 32,
            n_cc: 2,
            n_exec: 2,
            max_inflight: 3,
            flush_threshold: 4,
            ingest_capacity: 16,
            admission: AdmissionPolicy::ConflictBatch {
                classes: 4,
                batch: 4,
            },
            durability: DurabilityMode::LogFsync,
            sync_interval: interval,
            checkpoint_bytes: Some(192),
            shared_table: false,
            forwarding: true,
            workload: WorkloadKind::MicroHot,
            plan: FaultPlan {
                delay_pct: 30,
                deny_push_pct: 10,
                shuffle_lanes: true,
                ..FaultPlan::default()
            },
        };
        let a = run_sim(&cfg, false);
        assert!(a.violations.is_empty(), "{interval:?}: {:?}", a.violations);
        assert!(
            a.thread_names.iter().any(|n| n == "sync"),
            "coordinator not enrolled"
        );
        assert!(
            a.thread_names.iter().any(|n| n == "ckpt"),
            "checkpointer not enrolled"
        );
        let b = run_sim(&cfg, false);
        assert_eq!(
            a.trace_hash, b.trace_hash,
            "{interval:?}: schedule diverged"
        );
        assert_eq!(a.state_digest, b.state_digest);
    }
}

#[test]
fn explorer_smoke() {
    let report = explore(9000, 6, Some(12), false);
    assert_eq!(report.seeds_run, 6);
    assert!(
        report.failures.is_empty(),
        "{}",
        report
            .failures
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
