//! Regression corpus for the blocking `Session::submit` hot-loop fix.
//!
//! `submit` spins on `try_submit` when the ingest ring is full. Its
//! backoff used to stay in the spin/yield regime forever, which under
//! the deterministic scheduler (and on oversubscribed hosts) starved
//! the CC thread that would have drained the ring — a livelock. The fix
//! routes the saturated regime through `Backoff::snooze`, whose park
//! step yields the sim token (`sim::on_park`), letting the consumer
//! run.
//!
//! These runs squeeze the ring to near-zero capacity with more
//! transactions than the engine can hold in flight, so the client
//! blocks on a full ring on nearly every submission. Convergence under
//! every seed is the regression pin: if the submit path ever stops
//! yielding through the park seam, these runs hang (and the harness
//! timeout turns that into a failure) rather than merely slow down.

use orthrus_sim::{run_sim, SimConfig};

#[test]
fn blocked_client_on_a_tiny_ring_converges_for_all_seeds() {
    for seed in 1..=6 {
        let mut cfg = SimConfig::from_seed(seed);
        // Near-zero ring with a deep backlog: almost every submit
        // blocks, whatever workload/admission mix the seed derived.
        cfg.ingest_capacity = 2;
        cfg.txns = 40;
        let out = run_sim(&cfg, false);
        assert!(
            out.violations.is_empty(),
            "seed {seed} ({cfg:?}): {:?}",
            out.violations
        );
        assert_eq!(out.committed, 40, "seed {seed}: backlog must fully drain");
    }
}

#[test]
fn blocked_client_converges_under_fault_injection() {
    // Pop-delay + push-deny faults on top of the tiny ring: the
    // scheduler now *also* denies the drains that would free space.
    let mut cfg = SimConfig::from_seed(3);
    cfg.ingest_capacity = 2;
    cfg.txns = 40;
    cfg.plan.delay_pct = 30;
    cfg.plan.deny_push_pct = 10;
    cfg.plan.shuffle_lanes = true;
    let out = run_sim(&cfg, false);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert!(out.perturbations > 0, "fault plan should actually fire");
}
