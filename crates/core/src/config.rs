//! ORTHRUS engine configuration.

use std::path::PathBuf;
use std::sync::Arc;

use orthrus_common::{fx_hash_u64, Key};
use orthrus_durability::{DurabilityMode, SyncInterval};
use orthrus_txn::Database;

use crate::admit::AdmissionPolicy;

/// How lockable keys map to CC threads ("ORTHRUS partitions
/// responsibility for database objects across concurrency control threads
/// such that each database object is controlled by a single thread").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcAssignment {
    /// `key % n_cc` — the flat-keyspace experiments. Aligned with the
    /// workload generators' partition constraints and with the SPLIT
    /// variant's index partitions.
    KeyModulo,
    /// `warehouse(key) % n_cc` — TPC-C ("partitions database tables across
    /// concurrency control threads based on each row's warehouse_id
    /// attribute", Section 4.4).
    Warehouse,
    /// Skew-aware two-level mapping: `table[fx_hash(key) & (len − 1)]`
    /// names the owning CC thread. Tables come from
    /// [`crate::rebalance::balanced_assignment`], which packs sampled
    /// bucket load evenly across CC threads — the paper's answer to
    /// "concurrency control threads may be subject to over- and
    /// under-utilization due to workload skew" (Section 3.3). The table
    /// length must be a power of two.
    Balanced(Arc<[u32]>),
}

/// Which concurrency-control architecture the CC threads run
/// (Section 3.4: partitioning is "orthogonal to the design principle of
/// separating functionality").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMode {
    /// Each CC thread owns a disjoint lock partition; latch-free state
    /// (the main ORTHRUS design).
    Partitioned,
    /// All CC threads share one latched lock table; an execution thread
    /// sends its whole plan to any one CC thread (Section 3.4's
    /// alternative). Synchronization exists, but only among the small set
    /// of CC threads.
    SharedTable,
}

/// Engine shape and tuning.
#[derive(Debug, Clone)]
pub struct OrthrusConfig {
    /// Concurrency-control thread count.
    pub n_cc: usize,
    /// Execution thread count.
    pub n_exec: usize,
    /// Key → CC mapping.
    pub assignment: CcAssignment,
    /// In-flight transactions per execution thread (the asynchrony depth
    /// of Section 3.3).
    pub max_inflight: usize,
    /// CC→CC forwarding (Section 3.3). Disable for the `Ncc+1` vs `2·Ncc`
    /// ablation.
    pub forwarding: bool,
    /// OLLP estimate noise (see `orthrus_txn::plan_accesses`).
    pub ollp_noise_pct: u32,
    /// CC architecture (Section 3.4).
    pub cc_mode: CcMode,
    /// Buckets of the shared lock table when `cc_mode == SharedTable`.
    pub shared_table_buckets: usize,
    /// Override the exec→CC ring capacity (ablation A2). Only this ring
    /// may be shrunk safely: an execution thread blocked on a full input
    /// ring of a *live, draining* CC thread always makes progress, whereas
    /// undersized CC→CC rings could deadlock mutually-blocked CC threads.
    pub exec_queue_capacity: Option<usize>,
    /// Message-fabric batching degree (ablation A5). Execution threads
    /// buffer up to this many requests per destination CC thread before
    /// flushing them as one slice (one atomic publish); CC threads drain
    /// up to this many requests per poll round and coalesce the round's
    /// outgoing grants/forwards per destination into one flush.
    ///
    /// `1` reproduces the seed's message-per-message semantics exactly
    /// (every send publishes immediately), which keeps an apples-to-apples
    /// ablation baseline. Buffered messages are always flushed before the
    /// thread polls or parks, so batching never delays a message behind an
    /// idle quantum. `0` is tolerated and **normalizes to 1** — every
    /// hot-loop consumer reads the knob through
    /// [`Self::effective_flush_threshold`], since a literal zero would
    /// make every drain round a no-op (livelock).
    pub flush_threshold: usize,
    /// Capacity of each per-execution-thread client ingest ring in
    /// service mode ([`crate::OrthrusEngine::start`]); rounded up to a
    /// power of two by the ring. Bounded by design: a full ring is
    /// backpressure (`TrySubmitError::Full`) — the open-loop submission
    /// API never queues unboundedly inside the engine. Completion rings
    /// are sized from this plus the admission policy's queue window and
    /// the in-flight cap, so a draining client can never wedge the
    /// engine.
    pub ingest_capacity: usize,
    /// Admission scheduling policy (ablations A6/A7).
    /// [`AdmissionPolicy::Fifo`] is the seed's admission order;
    /// `ConflictBatch` batches transactions by conflict class before
    /// admission (Prasaad et al.), planning each transaction once at
    /// admission and draining per-class run queues back-to-back;
    /// `Adaptive` switches between the two online from the observed
    /// grant-deferral rate (hysteresis-controlled, see
    /// [`crate::admit::AdaptiveController`]).
    pub admission: AdmissionPolicy,
    /// Durability (`ORTHRUS_DURABILITY` in the harness): `Off` is the
    /// paper's main-memory-only semantics; `Log` appends one command-log
    /// record per fused admission run before the run's locks and
    /// completions are released; `LogFsync` additionally fsyncs per
    /// record, so a delivered completion implies a durable commit. Any
    /// mode other than `Off` requires [`Self::log_dir`].
    pub durability: DurabilityMode,
    /// Command-log directory when durability is on. The engine appends to
    /// an existing clean log; recovery (`OrthrusEngine::recover`) replays
    /// and repairs it first.
    pub log_dir: Option<PathBuf>,
    /// Fsync scheduling under `LogFsync` (`ORTHRUS_SYNC_INTERVAL` in the
    /// harness): `PerRun` = every exec thread fsyncs its own appends
    /// inline (durability rung 1); `Adaptive` (default) / `FixedMicros`
    /// = the cross-thread group-sync coordinator coalesces all
    /// outstanding appends into one fsync and exec threads release
    /// completions at or below the synced watermark. Ignored unless
    /// `durability == LogFsync`.
    pub sync_interval: SyncInterval,
    /// Fuzzy-checkpoint trigger (`ORTHRUS_CHECKPOINT` in the harness):
    /// take a checkpoint every this many appended log bytes; `None`
    /// disables the checkpointer thread. Ignored when durability is off.
    pub checkpoint_bytes: Option<u64>,
    /// Recovery parallelism (`ORTHRUS_REPLAY_THREADS` in the harness):
    /// how many threads `OrthrusEngine::recover` replays the committed
    /// suffix across (footprint-parallel leveling, bit-identical to
    /// serial). 1 = serial.
    pub replay_threads: usize,
    /// Prefix for the thread names this engine enrolls with the
    /// deterministic-simulation scheduler (`cc0`, `exec1`, `sync`, ...).
    /// Empty for a standalone engine; a partitioned deployment gives
    /// each member engine a distinct prefix (`p0.`, `p1.`, ...) so N
    /// engines under one seeded scheduler don't collide on names.
    pub sim_prefix: String,
}

/// Default fabric batching degree: deep enough to amortize the
/// `head`/`tail` cache-line round trips, shallow enough that one round's
/// flush always fits the steady-state ring-capacity bounds.
pub const DEFAULT_FLUSH_THRESHOLD: usize = 16;

/// Default per-execution-thread client ingest ring capacity (service
/// mode): deep enough that an offered-load driver rarely backpressures
/// below engine capacity, shallow enough that the post-shutdown drain
/// tail stays bounded and submit→commit latency reflects engine queueing
/// rather than an unbounded buffer.
pub const DEFAULT_INGEST_CAPACITY: usize = 256;

impl OrthrusConfig {
    /// A paper-style configuration: given a total "core" budget, dedicate
    /// 1/5 of threads to concurrency control (the 16 CC / 64 exec split
    /// the paper uses at 80 cores) and the rest to execution.
    pub fn for_cores(total: usize, assignment: CcAssignment) -> Self {
        let n_cc = (total / 5).max(1);
        OrthrusConfig {
            n_cc,
            n_exec: (total - n_cc).max(1),
            assignment,
            max_inflight: 16,
            forwarding: true,
            ollp_noise_pct: 0,
            cc_mode: CcMode::Partitioned,
            shared_table_buckets: 1 << 14,
            exec_queue_capacity: None,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            ingest_capacity: DEFAULT_INGEST_CAPACITY,
            admission: AdmissionPolicy::Fifo,
            durability: DurabilityMode::Off,
            log_dir: None,
            sync_interval: SyncInterval::default(),
            checkpoint_bytes: None,
            replay_threads: 1,
            sim_prefix: String::new(),
        }
    }

    /// Explicit CC/exec split.
    pub fn with_threads(n_cc: usize, n_exec: usize, assignment: CcAssignment) -> Self {
        assert!(n_cc >= 1 && n_exec >= 1);
        OrthrusConfig {
            n_cc,
            n_exec,
            assignment,
            max_inflight: 16,
            forwarding: true,
            ollp_noise_pct: 0,
            cc_mode: CcMode::Partitioned,
            shared_table_buckets: 1 << 14,
            exec_queue_capacity: None,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            ingest_capacity: DEFAULT_INGEST_CAPACITY,
            admission: AdmissionPolicy::Fifo,
            durability: DurabilityMode::Off,
            log_dir: None,
            sync_interval: SyncInterval::default(),
            checkpoint_bytes: None,
            replay_threads: 1,
            sim_prefix: String::new(),
        }
    }

    /// Enable command logging: `mode` governs the fsync policy, `dir`
    /// holds the segmented log.
    pub fn with_durability(mut self, mode: DurabilityMode, dir: impl Into<PathBuf>) -> Self {
        self.durability = mode;
        self.log_dir = Some(dir.into());
        self
    }

    /// Validate the engine shape. [`crate::OrthrusEngine::new`] rejects
    /// invalid configurations at construction — a zero thread count or
    /// in-flight cap would otherwise hang or starve silently at run time.
    ///
    /// `flush_threshold = 0` is deliberately *not* an error: it normalizes
    /// to `1` in [`Self::effective_flush_threshold`].
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cc == 0 {
            return Err("n_cc must be ≥ 1: no CC thread would own the lock space".into());
        }
        if self.n_exec == 0 {
            return Err("n_exec must be ≥ 1: no thread would run transactions".into());
        }
        if self.n_cc > u16::MAX as usize || self.n_exec > u16::MAX as usize {
            return Err(format!(
                "thread counts are u16 message-routing ids; got {} CC / {} exec",
                self.n_cc, self.n_exec
            ));
        }
        if self.max_inflight == 0 {
            return Err(
                "max_inflight must be ≥ 1: admission would never start a transaction".into(),
            );
        }
        if self.ingest_capacity == 0 {
            return Err(
                "ingest_capacity must be ≥ 1: a zero ring could never accept a submission".into(),
            );
        }
        self.admission.validate()?;
        if self.replay_threads == 0 {
            return Err("replay_threads must be ≥ 1: recovery needs a replay thread".into());
        }
        if self.durability.is_on() && self.log_dir.is_none() {
            return Err(format!(
                "durability mode {} needs a log_dir (OrthrusConfig::with_durability)",
                self.durability
            ));
        }
        if self.cc_mode == CcMode::SharedTable && self.shared_table_buckets == 0 {
            return Err("SharedTable mode needs shared_table_buckets ≥ 1".into());
        }
        if let CcAssignment::Balanced(table) = &self.assignment {
            if table.is_empty() || !table.len().is_power_of_two() {
                return Err(format!(
                    "Balanced assignment table length must be a nonzero power of two, got {}",
                    table.len()
                ));
            }
            if let Some(&cc) = table.iter().find(|&&cc| cc as usize >= self.n_cc) {
                return Err(format!(
                    "Balanced assignment routes to CC {cc}, but n_cc is {}",
                    self.n_cc
                ));
            }
        }
        Ok(())
    }

    /// Total thread (core) budget.
    pub fn total_threads(&self) -> usize {
        self.n_cc + self.n_exec
    }

    /// The batching degree the fabric actually runs at: `flush_threshold`
    /// normalized to ≥ 1. A zero would make every drain round a no-op
    /// (livelock), so every hot-loop consumer reads the knob through
    /// this accessor.
    #[inline]
    pub fn effective_flush_threshold(&self) -> usize {
        self.flush_threshold.max(1)
    }

    /// Resolve the CC thread owning `key`.
    #[inline]
    pub fn cc_of(&self, db: &Database, key: Key) -> u32 {
        match &self.assignment {
            CcAssignment::KeyModulo => (key % self.n_cc as u64) as u32,
            CcAssignment::Warehouse => {
                let layout = &db.tpcc().layout;
                layout.warehouse_of(key) % self.n_cc as u32
            }
            CcAssignment::Balanced(table) => {
                debug_assert!(table.len().is_power_of_two());
                table[(fx_hash_u64(key) as usize) & (table.len() - 1)]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_storage::tpcc::{TpccConfig, TpccDb};
    use orthrus_storage::Table;

    #[test]
    fn for_cores_keeps_paper_ratio() {
        let c = OrthrusConfig::for_cores(80, CcAssignment::KeyModulo);
        assert_eq!(c.n_cc, 16);
        assert_eq!(c.n_exec, 64);
        assert_eq!(c.total_threads(), 80);
        let c = OrthrusConfig::for_cores(5, CcAssignment::KeyModulo);
        assert_eq!((c.n_cc, c.n_exec), (1, 4));
    }

    #[test]
    fn effective_flush_threshold_never_zero() {
        let mut c = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        assert_eq!(c.effective_flush_threshold(), DEFAULT_FLUSH_THRESHOLD);
        c.flush_threshold = 0;
        assert_eq!(
            c.effective_flush_threshold(),
            1,
            "zero must clamp, not livelock"
        );
    }

    #[test]
    fn validate_rejects_degenerate_shapes() {
        let good = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
        assert!(good.validate().is_ok());

        let mut c = good.clone();
        c.n_cc = 0;
        assert!(c.validate().unwrap_err().contains("n_cc"));

        let mut c = good.clone();
        c.n_exec = 0;
        assert!(c.validate().unwrap_err().contains("n_exec"));

        let mut c = good.clone();
        c.max_inflight = 0;
        assert!(c.validate().unwrap_err().contains("max_inflight"));

        let mut c = good.clone();
        c.n_exec = u16::MAX as usize + 1;
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.admission = AdmissionPolicy::ConflictBatch {
            classes: 0,
            batch: 16,
        };
        assert!(c.validate().unwrap_err().contains("ConflictBatch"));

        // A well-formed adaptive shape passes…
        let mut c = good.clone();
        c.admission = AdmissionPolicy::adaptive();
        assert!(c.validate().is_ok());

        // …and each degenerate adaptive knob is rejected with a message
        // naming it.
        let adaptive = |f: &dyn Fn(&mut AdmissionPolicy)| {
            let mut p = AdmissionPolicy::adaptive();
            f(&mut p);
            let mut c = good.clone();
            c.admission = p;
            c.validate()
        };
        let set = |field: fn(&mut AdmissionPolicy) -> &mut u32, v: u32| {
            move |p: &mut AdmissionPolicy| *field(p) = v
        };
        fn threshold(p: &mut AdmissionPolicy) -> &mut u32 {
            let AdmissionPolicy::Adaptive { threshold_pct, .. } = p else {
                unreachable!()
            };
            threshold_pct
        }
        fn hyst(p: &mut AdmissionPolicy) -> &mut u32 {
            let AdmissionPolicy::Adaptive { hysteresis, .. } = p else {
                unreachable!()
            };
            hysteresis
        }
        fn epoch(p: &mut AdmissionPolicy) -> &mut u32 {
            let AdmissionPolicy::Adaptive { epoch, .. } = p else {
                unreachable!()
            };
            epoch
        }
        assert!(adaptive(&set(threshold, 0))
            .unwrap_err()
            .contains("threshold_pct"));
        assert!(adaptive(&set(hyst, 0)).unwrap_err().contains("hysteresis"));
        // Epoch length 1 (and 0) make the per-epoch rate degenerate.
        assert!(adaptive(&set(epoch, 1)).unwrap_err().contains("epoch"));
        assert!(adaptive(&set(epoch, 0)).unwrap_err().contains("epoch"));
        assert!(adaptive(&set(epoch, 2)).is_ok(), "2 is the minimum");
        assert!(adaptive(&|p| {
            let AdmissionPolicy::Adaptive { classes, .. } = p else {
                unreachable!()
            };
            *classes = 0;
        })
        .unwrap_err()
        .contains("classes"));
        assert!(adaptive(&|p| {
            let AdmissionPolicy::Adaptive { max_batch, .. } = p else {
                unreachable!()
            };
            *max_batch = 0;
        })
        .unwrap_err()
        .contains("max_batch"));

        let mut c = good.clone();
        c.cc_mode = CcMode::SharedTable;
        c.shared_table_buckets = 0;
        assert!(c.validate().is_err());

        // flush_threshold = 0 normalizes instead of erroring.
        let mut c = good.clone();
        c.flush_threshold = 0;
        assert!(c.validate().is_ok());
        assert_eq!(c.effective_flush_threshold(), 1);
    }

    #[test]
    fn validate_checks_balanced_tables() {
        let mut c = OrthrusConfig::with_threads(2, 2, CcAssignment::Balanced(Arc::from(vec![])));
        assert!(c.validate().unwrap_err().contains("power of two"));
        c.assignment = CcAssignment::Balanced(Arc::from(vec![0u32, 1, 0]));
        assert!(c.validate().is_err(), "length 3 is not a power of two");
        c.assignment = CcAssignment::Balanced(Arc::from(vec![0u32, 5, 0, 1]));
        assert!(
            c.validate().unwrap_err().contains("CC 5"),
            "out-of-range CC id must be rejected"
        );
        c.assignment = CcAssignment::Balanced(Arc::from(vec![0u32, 1, 0, 1]));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn key_modulo_assignment() {
        let c = OrthrusConfig::with_threads(4, 4, CcAssignment::KeyModulo);
        let db = Database::Flat(Table::new(16, 64));
        for k in 0..16u64 {
            assert_eq!(c.cc_of(&db, k), (k % 4) as u32);
        }
    }

    #[test]
    fn warehouse_assignment_groups_by_warehouse() {
        let c = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
        let db = Database::Tpcc(TpccDb::load(TpccConfig::tiny(4), 1));
        let l = db.tpcc().layout;
        for w in 0..4u32 {
            let expected = w % 2;
            assert_eq!(c.cc_of(&db, l.warehouse_key(w)), expected);
            assert_eq!(c.cc_of(&db, l.district_key(w, 1)), expected);
            assert_eq!(c.cc_of(&db, l.customer_key(w, 1, 3)), expected);
            assert_eq!(c.cc_of(&db, l.stock_key(w, 9)), expected);
        }
    }
}
