//! ORTHRUS: the paper's prototype (Section 3).
//!
//! Two design principles, faithfully reproduced:
//!
//! 1. **Partitioned functionality** — the engine pins two kinds of
//!    long-lived threads: *concurrency-control (CC) threads*, each owning
//!    a disjoint partition of the lock space with completely latch-free,
//!    thread-local lock state ([`cc`]), and *execution threads* that run
//!    transaction logic and never touch lock metadata ([`exec`]). The two
//!    kinds share no data structures; they communicate exclusively via
//!    latch-free SPSC rings (`orthrus-spsc`), one per (producer, consumer)
//!    pair ([`msg`]).
//! 2. **Planned, deadlock-free locking** — each transaction's access set
//!    is analyzed (or OLLP-reconnoitered) up front, grouped into per-CC
//!    *spans* sorted by CC id ([`plan`]), and acquired strictly in that
//!    order. With the CC→CC **forwarding optimization** of Section 3.3 a
//!    transaction touching `Ncc` CC threads costs `Ncc + 1` messages;
//!    without it (ablation) the execution thread mediates every span and
//!    pays `2·Ncc`.
//!
//! Execution threads are asynchronous: each multiplexes a slab of
//! in-flight transactions, starting new ones while older ones wait for
//! lock grants (Section 3.3).
//!
//! ## Fabric batching (`flush_threshold`)
//!
//! The paper's design stands on cheap message passing; this reproduction
//! additionally **amortizes** it. Every hot loop moves messages in
//! batches, governed by one knob, [`OrthrusConfig::flush_threshold`]:
//!
//! - execution threads stage `Acquire`/`Release` requests per destination
//!   CC thread during a scheduling quantum and flush each destination's
//!   batch with a single slice push — one atomic publish for up to
//!   `flush_threshold` messages (`orthrus_spsc::Producer::push_slice`);
//! - CC threads drain up to `flush_threshold` requests per poll round in
//!   per-lane batches (`orthrus_spsc::FanIn::drain_round`) and coalesce
//!   the round's grants and forwards per destination, so several grants
//!   to one execution thread cost one flush;
//! - buffers always flush before a thread polls or parks, so batching
//!   never delays a message behind an idle quantum, and staged messages
//!   stay within the ring-capacity bounds sized for the per-message
//!   fabric.
//!
//! `flush_threshold = 1` (ablation A5, `abl05_batching`) reproduces the
//! seed's message-per-message semantics exactly; the default is
//! [`config::DEFAULT_FLUSH_THRESHOLD`]. The batch ring operations
//! themselves are model-checked in `orthrus-spsc`'s proptests (batched
//! and single-message interleavings are observationally FIFO-equivalent).
//!
//! ## Admission scheduling ([`OrthrusConfig::admission`])
//!
//! Under high skew the bottleneck moves upstream of the fabric: blindly
//! admitted hot-key transactions pile waiters into CC queues that can
//! only serialize. Admission is therefore a pluggable policy layer
//! ([`admit`]) rather than code inlined in the execution thread:
//!
//! - [`AdmissionPolicy::Fifo`] (default) admits in generator order —
//!   proptest-pinned identical (programs *and* plans) to the seed's
//!   inlined admission;
//! - [`AdmissionPolicy::ConflictBatch`] plans each transaction once at
//!   admission, derives a conflict class from the hottest key of its
//!   planned footprint (a decaying frequency sketch over recent
//!   footprints), and drains per-class run queues back-to-back; each
//!   drained run is **serialized locally** by the execution thread under
//!   one fused lock acquisition — one acquire/release round per run
//!   instead of per transaction (Prasaad et al., "Improving High
//!   Contention OLTP Performance via Transaction Scheduling"; ablation
//!   A6, `abl06_admission`, shows the low-skew/high-skew crossover);
//! - [`AdmissionPolicy::Adaptive`] picks between the two **online**: every
//!   lock grant reports how many of its locks had to wait, execution
//!   threads fold those grant-deferral counts into per-epoch conflict
//!   counters, and a deterministic hysteresis controller
//!   ([`admit::AdaptiveController`]) promotes to conflict batching when
//!   the rate stays above a threshold, demotes when it stays below half
//!   of it, and walks the batch depth along the shared power-of-two
//!   ladder ([`ladder`]) in between (ablation A7, `abl07_adaptive`,
//!   tracks the better static policy across the crossover).
//!
//! ## Transaction sources and the open loop ([`source`], [`session`])
//!
//! *Where* admission gets its transactions is a second seam,
//! [`TxnSource`]: the closed-loop [`engine::OrthrusEngine::run`] wraps
//! the synthetic workload generator ([`SyntheticSource`] — proptest-
//! pinned bit-identical to the seed's admission stream), while the
//! service-mode lifecycle ([`engine::OrthrusEngine::start`] →
//! [`EngineHandle`]) feeds each execution thread from a bounded client
//! ingest ring ([`ClientSource`]). Clients hold [`Session`]s:
//! `submit(Program) -> Ticket` routes by [`hot_key_hint`], a full ring
//! is backpressure ([`TrySubmitError::Full`]), and every accepted
//! ticket completes exactly once through a completion ring carrying
//! submit→commit latency (folded into `RunStats` as per-thread latency
//! histograms). All three admission policies operate unchanged over
//! either source; shutdown drains client backlogs dry before stopping
//! (ablation A8, `abl08_openloop`, sweeps offered load against
//! delivered throughput and latency).
//!
//! ## Durability ([`OrthrusConfig::durability`])
//!
//! The paper's engine is main-memory only; this reproduction adds an
//! optional command log (`orthrus-durability`, ablation A9,
//! `abl09_durability`). With `DurabilityMode::Log`/`LogFsync`, every
//! committed fused run appends **one** checksummed record of its
//! programs — while the run's locks are still held, so the log order is
//! conflict-consistent — and ticketed completions release only after the
//! covering record is written (fsynced, under `log+fsync`). Group commit
//! rides the existing admission batching: one append (and one fsync) per
//! run, the same amortization schedule as the lock fabric's round trips.
//! [`OrthrusEngine::recover`] replays a (possibly torn) log through
//! `execute_planned` to rebuild table state before serving.
//!
//! [`hot_key_hint`]: orthrus_txn::Program::hot_key_hint

pub mod admit;
pub mod cc;
pub mod config;
pub mod engine;
pub mod exec;
pub mod hub;
pub mod ladder;
pub mod msg;
pub mod plan;
pub mod rebalance;
pub mod session;
pub mod shared;
pub mod source;

#[cfg(test)]
mod proptests;

pub use admit::{AdaptiveController, AdmissionPolicy, Admitted, Admitter};
pub use config::{CcAssignment, CcMode, OrthrusConfig};
pub use engine::{EngineError, EngineHandle, OrthrusEngine};
pub use hub::{ClientRx, CompletionHub};
pub use orthrus_durability::{DurabilityMode, ReplayReport, SyncInterval};
pub use plan::LockPlan;
pub use rebalance::{balanced_assignment, LoadHistogram};
pub use session::{BatchSubmit, Session, TrySubmitError};
pub use source::{ClientSource, Completion, Sourced, SyntheticSource, Ticket, TxnSource};

/// Serializes this crate's timed-engine tests: two concurrent multi-thread
/// engine runs on a small CI host can starve one measurement window.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
