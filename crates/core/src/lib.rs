//! ORTHRUS: the paper's prototype (Section 3).
//!
//! Two design principles, faithfully reproduced:
//!
//! 1. **Partitioned functionality** — the engine pins two kinds of
//!    long-lived threads: *concurrency-control (CC) threads*, each owning
//!    a disjoint partition of the lock space with completely latch-free,
//!    thread-local lock state ([`cc`]), and *execution threads* that run
//!    transaction logic and never touch lock metadata ([`exec`]). The two
//!    kinds share no data structures; they communicate exclusively via
//!    latch-free SPSC rings (`orthrus-spsc`), one per (producer, consumer)
//!    pair ([`msg`]).
//! 2. **Planned, deadlock-free locking** — each transaction's access set
//!    is analyzed (or OLLP-reconnoitered) up front, grouped into per-CC
//!    *spans* sorted by CC id ([`plan`]), and acquired strictly in that
//!    order. With the CC→CC **forwarding optimization** of Section 3.3 a
//!    transaction touching `Ncc` CC threads costs `Ncc + 1` messages;
//!    without it (ablation) the execution thread mediates every span and
//!    pays `2·Ncc`.
//!
//! Execution threads are asynchronous: each multiplexes a slab of
//! in-flight transactions, starting new ones while older ones wait for
//! lock grants (Section 3.3).

pub mod cc;
pub mod config;
pub mod engine;
pub mod exec;
pub mod msg;
pub mod plan;
pub mod rebalance;
pub mod shared;

#[cfg(test)]
mod proptests;

pub use config::{CcAssignment, CcMode, OrthrusConfig};
pub use engine::OrthrusEngine;
pub use plan::LockPlan;
pub use rebalance::{balanced_assignment, LoadHistogram};

/// Serializes this crate's timed-engine tests: two concurrent multi-thread
/// engine runs on a small CI host can starve one measurement window.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
