//! Completion fan-out: routing engine completions back to the client
//! that submitted each ticket.
//!
//! The engine's completion rings are per-*execution-thread* — one
//! drainer ([`crate::EngineHandle::drain_completions`]) sees every
//! completion, in no particular client order. In-process harness
//! clients don't care (one driver owns all tickets), but a network
//! front-end has many connections, each owed exactly the completions
//! for its own submissions. The [`CompletionHub`] is that router:
//!
//! - submission tags each ticket with its owner in the [`OwnerTable`]
//!   (a sharded ticket → client map written under the ingest-lane lock
//!   *before* the ring push, so a completion — which happens-after the
//!   push — always finds its owner);
//! - one pump thread drains the engine and calls [`CompletionHub::route`],
//!   which moves each completion to its owner's bounded SPSC ring
//!   ([`ClientRx`]), spilling to a per-client overflow queue when the
//!   client lags (never lost, never blocking the pump);
//! - a disconnected client's leftovers are counted as *orphaned*, so
//!   ticket conservation stays provable per connection even through
//!   abrupt disconnects: `routed + orphaned + unowned` = completions
//!   drained.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use orthrus_spsc::{channel_labeled, Consumer, Producer};
use parking_lot::Mutex;

use crate::session::Session;
use crate::source::Completion;

/// Number of shards in the ticket → owner map. Submitters and the pump
/// thread contend only when their tickets collide modulo this.
const OWNER_SHARDS: usize = 16;

/// Sharded ticket → client-id map. Entries are inserted at submission
/// (under the ingest-lane lock, before the ring push) and removed by the
/// routing pump, so the table's steady-state size is the in-flight
/// window, not the run length.
pub(crate) struct OwnerTable {
    shards: Vec<Mutex<HashMap<u64, u32>>>,
}

impl OwnerTable {
    pub(crate) fn new() -> Self {
        OwnerTable {
            shards: (0..OWNER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, ticket: u64) -> &Mutex<HashMap<u64, u32>> {
        &self.shards[(ticket % OWNER_SHARDS as u64) as usize]
    }

    #[inline]
    pub(crate) fn insert(&self, ticket: u64, owner: u32) {
        self.shard(ticket).lock().insert(ticket, owner);
    }

    #[inline]
    pub(crate) fn take(&self, ticket: u64) -> Option<u32> {
        self.shard(ticket).lock().remove(&ticket)
    }
}

/// Engine-side slot for one registered client.
struct Slot {
    ring: Producer<Completion>,
    overflow: Arc<Mutex<VecDeque<Completion>>>,
}

/// The client's receive half: a bounded completion ring plus the shared
/// overflow queue the pump spills into when the ring is full.
pub struct ClientRx {
    id: u32,
    ring: Consumer<Completion>,
    overflow: Arc<Mutex<VecDeque<Completion>>>,
}

impl ClientRx {
    /// This client's id — pass as `owner` to
    /// [`Session::try_submit_owned`] / [`Session::try_submit_batch`].
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Move up to `max` completions into `out` (ring first — the fast
    /// path — then any overflow spill); returns how many.
    pub fn drain_into(&mut self, out: &mut Vec<Completion>, max: usize) -> usize {
        let mut n = self.ring.drain_into(out, max);
        if n < max {
            let mut spill = self.overflow.lock();
            while n < max {
                match spill.pop_front() {
                    Some(c) => {
                        out.push(c);
                        n += 1;
                    }
                    None => break,
                }
            }
        }
        n
    }
}

/// Routes drained completions to per-client rings. One instance per
/// engine; [`route`](Self::route) is called from a single pump thread,
/// registration and deregistration from any thread.
pub struct CompletionHub {
    session: Session,
    slots: Mutex<HashMap<u32, Slot>>,
    next_id: AtomicU32,
    partition: usize,
    routed: AtomicU64,
    orphaned: AtomicU64,
    unowned: AtomicU64,
}

impl CompletionHub {
    /// Build a hub over the engine the session belongs to. The session is
    /// only used to reach the shared [`OwnerTable`]; cloning one costs an
    /// `Arc` bump. The hub labels itself partition 0; a partitioned
    /// deployment uses [`with_partition`](Self::with_partition).
    pub fn new(session: Session) -> Self {
        Self::with_partition(session, 0)
    }

    /// Like [`new`](Self::new), but tagging this hub with the partition it
    /// serves so conservation audits ([`breakdown`](Self::breakdown)) can
    /// localize routed/orphaned losses to one partition.
    pub fn with_partition(session: Session, partition: usize) -> Self {
        CompletionHub {
            session,
            slots: Mutex::new(HashMap::new()),
            next_id: AtomicU32::new(0),
            partition,
            routed: AtomicU64::new(0),
            orphaned: AtomicU64::new(0),
            unowned: AtomicU64::new(0),
        }
    }

    /// Register a client; `capacity` bounds its completion ring (rounded
    /// up to a power of two). Returns the receive half.
    pub fn register(&self, capacity: usize) -> ClientRx {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (p, c) = channel_labeled(capacity, "client-completion");
        let overflow = Arc::new(Mutex::new(VecDeque::new()));
        self.slots.lock().insert(
            id,
            Slot {
                ring: p,
                overflow: Arc::clone(&overflow),
            },
        );
        ClientRx {
            id,
            ring: c,
            overflow,
        }
    }

    /// Drop a client's slot. Completions for its still-inflight tickets
    /// are counted as orphaned when they arrive — the abrupt-disconnect
    /// path; conservation accounting stays intact.
    pub fn unregister(&self, id: u32) {
        self.slots.lock().remove(&id);
    }

    /// Route a drained batch. Single-pump: callers must serialize.
    pub fn route(&self, completions: &[Completion]) {
        if completions.is_empty() {
            return;
        }
        let mut slots = self.slots.lock();
        let (mut routed, mut orphaned, mut unowned) = (0u64, 0u64, 0u64);
        for &c in completions {
            match self.session.take_owner(c.ticket) {
                None => unowned += 1,
                Some(owner) => match slots.get_mut(&owner) {
                    None => orphaned += 1,
                    Some(slot) => {
                        routed += 1;
                        if let Err(c) = slot.ring.try_push(c) {
                            // Client lagging: spill, never block the pump.
                            slot.overflow.lock().push_back(c);
                        }
                    }
                },
            }
        }
        self.routed.fetch_add(routed, Ordering::Relaxed);
        self.orphaned.fetch_add(orphaned, Ordering::Relaxed);
        self.unowned.fetch_add(unowned, Ordering::Relaxed);
    }

    /// Completions delivered to a registered client (ring or overflow).
    pub fn routed(&self) -> u64 {
        self.routed.load(Ordering::Relaxed)
    }

    /// Completions whose owner had unregistered (abrupt disconnect).
    pub fn orphaned(&self) -> u64 {
        self.orphaned.load(Ordering::Relaxed)
    }

    /// Completions for tickets never tagged with an owner (submitted
    /// through the plain un-owned [`Session`] API).
    pub fn unowned(&self) -> u64 {
        self.unowned.load(Ordering::Relaxed)
    }

    /// The partition this hub serves (0 for unpartitioned deployments).
    pub fn partition(&self) -> usize {
        self.partition
    }

    /// Snapshot the per-partition routing ledger for
    /// [`orthrus_common::RunStats::hub`] — how this partition's drained
    /// completions split into routed / orphaned / unowned.
    pub fn breakdown(&self) -> orthrus_common::HubBreakdown {
        orthrus_common::HubBreakdown {
            partition: self.partition,
            routed: self.routed(),
            orphaned: self.orphaned(),
            unowned: self.unowned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CcAssignment, OrthrusConfig};
    use crate::engine::OrthrusEngine;
    use orthrus_storage::Table;
    use orthrus_txn::{Database, Program};

    fn tiny_engine() -> crate::engine::EngineHandle {
        let db = Arc::new(Database::Flat(Table::new(256, 64)));
        let cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo);
        OrthrusEngine::service(db, cfg).start(7)
    }

    fn rmw(key: u64) -> Program {
        Program::Rmw { keys: vec![key] }
    }

    #[test]
    fn completions_route_to_their_owners() {
        let _guard = crate::test_serial();
        let mut handle = tiny_engine();
        let session = handle.session();
        let hub = CompletionHub::new(session.clone());
        let mut a = hub.register(64);
        let mut b = hub.register(64);

        let mut want_a = Vec::new();
        let mut want_b = Vec::new();
        for i in 0..40u64 {
            let (rx, want) = if i % 2 == 0 {
                (&a, &mut want_a)
            } else {
                (&b, &mut want_b)
            };
            let t = session
                .try_submit_owned(rmw(i), rx.id())
                .expect("ring has space");
            want.push(t);
        }

        let mut drained = Vec::new();
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        while got_a.len() + got_b.len() < 40 {
            drained.clear();
            handle.drain_completions(&mut drained);
            hub.route(&drained);
            a.drain_into(&mut got_a, usize::MAX);
            b.drain_into(&mut got_b, usize::MAX);
            std::thread::yield_now();
        }
        let mut got_a: Vec<_> = got_a.iter().map(|c| c.ticket).collect();
        let mut got_b: Vec<_> = got_b.iter().map(|c| c.ticket).collect();
        got_a.sort();
        got_b.sort();
        want_a.sort();
        want_b.sort();
        assert_eq!(got_a, want_a, "client a must see exactly its tickets");
        assert_eq!(got_b, want_b, "client b must see exactly its tickets");
        assert_eq!(hub.routed(), 40);
        assert_eq!(hub.orphaned() + hub.unowned(), 0);
        let bd = hub.breakdown();
        assert_eq!(bd.partition, 0, "plain hubs label themselves partition 0");
        assert_eq!(bd.total(), 40);
        handle.shutdown();
    }

    #[test]
    fn unregistered_owner_counts_as_orphaned_not_lost() {
        let _guard = crate::test_serial();
        let mut handle = tiny_engine();
        let session = handle.session();
        let hub = CompletionHub::new(session.clone());
        let gone = hub.register(8);
        let gone_id = gone.id();
        let n = 10u64;
        for i in 0..n {
            session.try_submit_owned(rmw(i), gone_id).unwrap();
        }
        hub.unregister(gone_id); // abrupt disconnect before completions land
        drop(gone);

        let mut drained = Vec::new();
        while hub.orphaned() < n {
            drained.clear();
            handle.drain_completions(&mut drained);
            hub.route(&drained);
            std::thread::yield_now();
        }
        assert_eq!(hub.orphaned(), n, "every ticket accounted for");
        assert_eq!(hub.routed(), 0);
        assert_eq!(
            hub.breakdown(),
            orthrus_common::HubBreakdown {
                partition: 0,
                routed: 0,
                orphaned: n,
                unowned: 0
            }
        );
        handle.shutdown();
    }

    #[test]
    fn ring_overflow_spills_without_loss() {
        let _guard = crate::test_serial();
        let mut handle = tiny_engine();
        let session = handle.session();
        let hub = CompletionHub::new(session.clone());
        // Ring capacity 2: most of the 30 completions must spill into the
        // overflow queue while the client refuses to drain.
        let mut rx = hub.register(2);
        let n = 30u64;
        for i in 0..n {
            let mut p = rmw(i);
            loop {
                match session.try_submit_owned(p, rx.id()) {
                    Ok(_) => break,
                    Err(crate::session::TrySubmitError::Full(back)) => {
                        p = back;
                        std::thread::yield_now();
                    }
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
        }
        let mut drained = Vec::new();
        while hub.routed() < n {
            drained.clear();
            handle.drain_completions(&mut drained);
            hub.route(&drained);
            std::thread::yield_now();
        }
        let mut got = Vec::new();
        assert_eq!(rx.drain_into(&mut got, usize::MAX), n as usize);
        let mut tickets: Vec<_> = got.iter().map(|c| c.ticket.0).collect();
        tickets.sort_unstable();
        assert_eq!(tickets, (0..n).collect::<Vec<_>>());
        handle.shutdown();
    }
}
