//! The shared power-of-two ladder: one implementation of "walk a knob
//! through 1, 2, 4, …" used by both the in-engine adaptive admission
//! controller ([`crate::admit::AdaptiveController`] walks the batch depth
//! up and down as the observed conflict rate moves) and the harness's
//! offline `tune_flush_threshold` search (which climbs the same ladder
//! over measured epochs and early-stops past the knee).
//!
//! Both tuners share the *shape* of the walk — exponential steps bounded
//! by an explicit ceiling, so a misbehaving signal can never push a knob
//! to a pathological value — while differing in when they step: the
//! controller steps once per epoch from a live signal; the climb measures
//! every rung once, ascending, with a patience-based early stop.

/// One rung up the ladder: double, clamped to `max`.
///
/// `v` is normally a power of two (both callers start at one and only move
/// via these steps), but the clamp makes any value safe.
#[inline]
pub fn step_up(v: usize, max: usize) -> usize {
    debug_assert!(v >= 1 && max >= 1);
    v.saturating_mul(2).min(max)
}

/// One rung down the ladder: halve, clamped to `min`.
#[inline]
pub fn step_down(v: usize, min: usize) -> usize {
    debug_assert!(min >= 1);
    (v / 2).max(min)
}

/// An ascending climb over the rungs `1, 2, 4, …, max`, early-stopping
/// after `patience` consecutive regressions — the measured-epoch search
/// `tune_flush_threshold` runs. Usage: while [`Self::rung`] is `Some`,
/// measure that rung and [`Self::record`] the score.
#[derive(Debug, Clone)]
pub struct Pow2Climb {
    next: Option<usize>,
    max: usize,
    patience: usize,
    declines: usize,
    prev: f64,
}

impl Pow2Climb {
    /// A climb up to `max` (inclusive; the last rung may undershoot it if
    /// it is not a power of two), stopping after `patience` consecutive
    /// score regressions.
    pub fn new(max: usize, patience: usize) -> Self {
        assert!(max >= 1, "ladder needs at least rung 1");
        assert!(patience >= 1, "patience 0 would stop before measuring");
        Pow2Climb {
            next: Some(1),
            max,
            patience,
            declines: 0,
            prev: f64::MIN,
        }
    }

    /// The rung to measure next, or `None` when the climb is over.
    pub fn rung(&self) -> Option<usize> {
        self.next
    }

    /// Record the current rung's score and advance.
    pub fn record(&mut self, score: f64) {
        let Some(cur) = self.next else { return };
        if score < self.prev {
            self.declines += 1;
            if self.declines >= self.patience {
                self.next = None;
                return;
            }
        } else {
            self.declines = 0;
        }
        self.prev = score;
        self.next = cur.checked_mul(2).filter(|&n| n <= self.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_clamp_at_both_ends() {
        assert_eq!(step_up(1, 16), 2);
        assert_eq!(step_up(8, 16), 16);
        assert_eq!(step_up(16, 16), 16, "ceiling holds");
        assert_eq!(step_up(usize::MAX, usize::MAX), usize::MAX, "no overflow");
        assert_eq!(step_down(16, 2), 8);
        assert_eq!(step_down(2, 2), 2, "floor holds");
        assert_eq!(step_down(1, 1), 1);
    }

    #[test]
    fn up_then_down_returns_to_the_start() {
        let mut v = 2usize;
        for _ in 0..10 {
            v = step_up(v, 16);
        }
        assert_eq!(v, 16);
        for _ in 0..10 {
            v = step_down(v, 2);
        }
        assert_eq!(v, 2);
    }

    #[test]
    fn climb_visits_every_rung_of_a_rising_curve() {
        let mut climb = Pow2Climb::new(64, 2);
        let mut rungs = Vec::new();
        while let Some(r) = climb.rung() {
            rungs.push(r);
            climb.record((r as f64).ln() + 1.0);
        }
        assert_eq!(rungs, vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn climb_stops_after_patience_regressions() {
        // Peak at 4: rungs 8 and 16 regress, so the climb ends there.
        let mut climb = Pow2Climb::new(1024, 2);
        let mut rungs = Vec::new();
        while let Some(r) = climb.rung() {
            rungs.push(r);
            climb.record(1000.0 - (r as f64 - 4.0).abs() * 10.0);
        }
        assert_eq!(rungs, vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn climb_of_one_rung_measures_once() {
        let mut climb = Pow2Climb::new(1, 2);
        assert_eq!(climb.rung(), Some(1));
        climb.record(1.0);
        assert_eq!(climb.rung(), None);
    }

    #[test]
    #[should_panic(expected = "at least rung 1")]
    fn climb_rejects_zero_max() {
        let _ = Pow2Climb::new(0, 2);
    }
}
