//! The execution thread: transaction logic only, no lock metadata.
//!
//! "Execution threads do not contain instructions nor data pertaining to
//! concurrency control; they are only responsible for performing each
//! transaction's logic" (Section 3.1). Each thread multiplexes a slab of
//! in-flight transactions: after sending a lock request it does not wait —
//! it handles responses for older transactions or starts new ones
//! (Section 3.3's asynchrony).
//!
//! **Which** transaction enters next is not this thread's decision: the
//! admission loop pulls *runs* from a per-thread [`Admitter`] (see
//! [`crate::admit`]), which generates, plans, and — under the
//! `ConflictBatch` policy — groups same-conflict-class transactions
//! back-to-back before they ever occupy an in-flight slot. A multi-
//! transaction run is serialized locally: one fused lock acquisition over
//! the union footprint, back-to-back execution, one release round. The
//! plans produced at admission ride the slot to execution; only OLLP
//! retries re-plan.
//!
//! Figure-10 accounting on this thread: `Execution` = running transaction
//! logic; `Locking` = admission (generation + planning), building lock
//! plans, sending/receiving lock messages; `Waiting` = idle polls with
//! nothing runnable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use orthrus_common::runtime::RunCtl;
use orthrus_common::{Backoff, Phase, PhaseTimer, ThreadStats};
use orthrus_durability::{CommandLog, LoggedCommit};
use orthrus_spsc::{FanIn, Producer};
use orthrus_txn::{execute_planned, AbortKind, AccessSet, Database};

use crate::admit::{Admitted, Admitter};
use crate::config::OrthrusConfig;
use crate::msg::{CcRequest, ExecResponse, Token};
use crate::plan::LockPlan;
use crate::source::{Completion, TxnSource};

/// One in-flight lock acquisition: a *run* of same-conflict-class
/// transactions serialized locally under a single fused lock plan. FIFO
/// admission always produces runs of one (the seed's shape); conflict-
/// batched admission fuses up to `batch` same-class transactions into one
/// acquire/release round — the hot-key convoy pays one fabric round trip
/// per run instead of one per transaction. Each [`Admitted`] carries the
/// plan produced at admission (reused through execution — no
/// re-planning) and its admission timestamp (commit latency spans
/// run-queue wait, lock wait, and OLLP retries).
struct Inflight {
    txns: Vec<Admitted>,
    /// Fused lock plan covering the union of the run's footprints.
    lock_plan: Arc<LockPlan>,
    /// Token generation of the current acquire chain (see [`Token`]):
    /// fresh per run *and* per OLLP retry, so CC threads never confuse a
    /// successor's early-arriving forwarded acquire with a double-acquire
    /// by the predecessor whose releases are still in flight.
    gen: u32,
    /// OLLP mismatches from this run awaiting standalone retry (rare):
    /// retried one at a time on this slot after the fused release.
    retries: Vec<Admitted>,
}

/// One execution thread's state and endpoints.
pub struct ExecThread<'a, S: TxnSource> {
    exec_id: u16,
    db: &'a Database,
    cfg: &'a OrthrusConfig,
    to_cc: Vec<Producer<CcRequest>>,
    from_cc: FanIn<ExecResponse>,
    slots: Vec<Option<Inflight>>,
    free: Vec<u16>,
    inflight: usize,
    /// The pluggable admission layer: transaction source + planning + any
    /// conflict-class run queues.
    admit: Admitter<S>,
    /// Completion ring back to the client side (service mode): every
    /// ticketed commit reports its submit→commit latency here. `None` in
    /// closed-loop (synthetic) runs.
    completions: Option<Producer<Completion>>,
    /// The engine's command log (durability on): one record per fused
    /// run, appended **while the run's locks are still held** — see
    /// [`Self::on_response`] for the ordering contract. `None` when
    /// durability is off.
    log: Option<Arc<CommandLog>>,
    /// Committed programs of the current run awaiting their group-commit
    /// append (reused across runs; empty whenever `log` is `None`).
    log_batch: Vec<LoggedCommit>,
    /// The current run's commits awaiting latency stamping and (for
    /// ticketed work) completion delivery. Latency is stamped — and the
    /// completion released — only after the run's group-commit append
    /// (and fsync, under `log+fsync`), so commit latency includes the
    /// durability wait ("true commit latency").
    commit_batch: Vec<(Option<crate::source::Ticket>, std::time::Instant)>,
    /// Group-sync mode (`log+fsync` with a sync coordinator): `true`
    /// when appends publish a watermark instead of fsyncing inline, and
    /// completions gate on [`orthrus_durability::SyncState::synced`].
    group_sync: bool,
    /// Commits appended but not yet covered by the coordinator's synced
    /// watermark, FIFO in LSN order: `(ticket, started, appended_at,
    /// lsn)`. Released by [`Self::release_durable`] each quantum once
    /// `lsn <= synced`; `appended_at → release` is the fsync wait.
    pending_durable: std::collections::VecDeque<(
        Option<crate::source::Ticket>,
        std::time::Instant,
        std::time::Instant,
        u64,
    )>,
    /// Completions that did not fit the ring because the client lagged.
    /// The engine **never blocks** on completion delivery — a blocking
    /// push could wedge the whole engine against a client stuck in a
    /// backpressured `submit` (each blocked on the other) — so overflow
    /// parks here and re-flushes every quantum, FIFO order preserved.
    /// Memory is proportional to how far the client's draining lags its
    /// submitting, and tickets are never dropped.
    completion_overflow: Vec<Completion>,
    /// Set once a stop request lands on a drain-on-stop (client) source:
    /// the shutdown drain can be ingest-ring-deep, and its commits fall
    /// *after* the measured window closes, so they must not count toward
    /// windowed throughput/latency (they still complete tickets and
    /// bump the lifetime counter). The closed-loop drain tail (bounded
    /// by `max_inflight`, present in the seed too) stays counted —
    /// message-economics ratios are pinned against it.
    post_stop: bool,
    stats: ThreadStats,
    /// Round-robin CC choice for `CcMode::SharedTable`.
    next_cc: u32,
    /// Wrapping token-generation counter (see [`Inflight::gen`]).
    next_token_gen: u32,
    /// Per-destination send buffers: requests accumulated during one
    /// scheduling quantum, flushed as a slice (one atomic publish per
    /// destination). With `flush_threshold == 1` every send flushes
    /// immediately — the seed's message-per-message behaviour.
    send_buf: Vec<Vec<CcRequest>>,
    /// Responses staged by the fan-in drain (reused across iterations).
    resp_buf: Vec<ExecResponse>,
}

impl<'a, S: TxnSource> ExecThread<'a, S> {
    pub fn new(
        exec_id: u16,
        db: &'a Database,
        cfg: &'a OrthrusConfig,
        to_cc: Vec<Producer<CcRequest>>,
        from_cc: FanIn<ExecResponse>,
        admit: Admitter<S>,
    ) -> Self {
        let cap = cfg.max_inflight.max(1);
        let n_cc = to_cc.len();
        let flush = cfg.effective_flush_threshold();
        ExecThread {
            exec_id,
            db,
            cfg,
            to_cc,
            from_cc,
            slots: (0..cap).map(|_| None).collect(),
            free: (0..cap as u16).rev().collect(),
            inflight: 0,
            admit,
            completions: None,
            log: None,
            log_batch: Vec::new(),
            commit_batch: Vec::new(),
            group_sync: false,
            pending_durable: std::collections::VecDeque::new(),
            completion_overflow: Vec::new(),
            post_stop: false,
            stats: ThreadStats::default(),
            next_cc: exec_id as u32,
            next_token_gen: 0,
            send_buf: (0..n_cc).map(|_| Vec::with_capacity(flush)).collect(),
            resp_buf: Vec::with_capacity(cap),
        }
    }

    /// Attach the completion ring (service mode): ticketed commits are
    /// reported back to the client through it.
    pub fn with_completions(mut self, ring: Producer<Completion>) -> Self {
        self.completions = Some(ring);
        self
    }

    /// Attach the engine's command log (durability on): every committed
    /// run appends one record before its locks and completions release.
    pub fn with_log(mut self, log: Option<Arc<CommandLog>>) -> Self {
        self.group_sync = log.as_ref().is_some_and(|l| l.group_sync());
        self.log = log;
        self
    }

    /// Release every pending commit the coordinator's synced watermark
    /// now covers (group-sync mode only): stamp its latency and fsync
    /// wait, then hand the ticketed ones to the client. Returns how many
    /// were released.
    ///
    /// # Panics
    /// When the coordinator's fsync failed: these commits already
    /// executed, and this thread has no way to un-execute them — the
    /// broken durability contract surfaces as
    /// [`crate::EngineError::WorkerPanicked`] at shutdown.
    fn release_durable(&mut self) -> usize {
        if self.pending_durable.is_empty() {
            return 0;
        }
        let st = self.log.as_ref().expect("pending implies log").sync_state();
        if st.is_failed() {
            panic!(
                "group fsync failed; {} commits lost durability",
                self.pending_durable.len()
            );
        }
        let synced = st.synced();
        let mut released = 0;
        while let Some(&(_, _, _, lsn)) = self.pending_durable.front() {
            if lsn > synced {
                break;
            }
            let (ticket, started, appended_at, _) =
                self.pending_durable.pop_front().expect("front checked");
            let latency_ns = started.elapsed().as_nanos() as u64;
            if !self.post_stop {
                self.stats.committed += 1;
                self.stats.latency.record(latency_ns);
                self.stats
                    .log_fsync_wait
                    .record(appended_at.elapsed().as_nanos() as u64);
            }
            if let Some(ticket) = ticket {
                self.deliver_completion(Completion { ticket, latency_ns });
            }
            released += 1;
        }
        released
    }

    /// Stage a request for `cc`, flushing the destination's buffer as one
    /// slice once it reaches the batching threshold.
    #[inline]
    fn send(&mut self, cc: usize, req: CcRequest) {
        self.send_buf[cc].push(req);
        self.stats.messages_sent += 1;
        if self.send_buf[cc].len() >= self.cfg.effective_flush_threshold() {
            self.to_cc[cc].push_slice(&mut self.send_buf[cc]);
        }
    }

    /// Hand a ticketed commit's completion to the client, parking it in
    /// the overflow buffer if the ring is full (never blocks; see
    /// [`Self::completion_overflow`]).
    #[inline]
    fn deliver_completion(&mut self, completion: Completion) {
        let Some(ring) = self.completions.as_mut() else {
            return;
        };
        if !self.completion_overflow.is_empty() || ring.try_push(completion).is_err() {
            self.completion_overflow.push(completion);
        }
    }

    /// Re-flush parked completions into the ring as the client drains
    /// (one slice publish per attempt; cheap no-op when nothing parked).
    fn flush_completions(&mut self) {
        let Some(ring) = self.completions.as_mut() else {
            return;
        };
        while !self.completion_overflow.is_empty() {
            if ring.try_push_slice(&mut self.completion_overflow) == 0 {
                break;
            }
        }
    }

    /// Publish every staged request. Called before the thread polls or
    /// parks, so batching never holds a message across an idle quantum.
    fn flush_sends(&mut self) {
        for (cc, buf) in self.send_buf.iter_mut().enumerate() {
            if !buf.is_empty() {
                self.to_cc[cc].push_slice(buf);
            }
        }
    }

    /// A fresh token generation for a new acquire chain.
    fn fresh_gen(&mut self) -> u32 {
        let g = self.next_token_gen;
        self.next_token_gen = self.next_token_gen.wrapping_add(1);
        g
    }

    /// Build the lock plan under the configured CC architecture: grouped
    /// per owning CC thread (partitioned), or one span bound to a
    /// round-robin-chosen CC thread (Section 3.4 shared table).
    fn build_lock_plan(&mut self, accesses: &AccessSet) -> Arc<LockPlan> {
        let (cfg, db) = (self.cfg, self.db);
        match cfg.cc_mode {
            crate::config::CcMode::Partitioned => {
                Arc::new(LockPlan::build(accesses, |k| cfg.cc_of(db, k)))
            }
            crate::config::CcMode::SharedTable => {
                let pick = self.next_cc % cfg.n_cc as u32;
                self.next_cc = self.next_cc.wrapping_add(1);
                Arc::new(LockPlan::build(accesses, |_| pick))
            }
        }
    }

    /// Main loop: run until stopped *and* every in-flight transaction has
    /// drained, then decrement `active_execs` (CC threads exit once it
    /// reaches zero and their queues are dry).
    ///
    /// The stop contract depends on the source
    /// ([`TxnSource::drain_on_stop`]): synthetic sources stop admitting
    /// at the stop request (the seed's wind-down); client sources keep
    /// admitting until the ingest ring and any admission backlog are
    /// **dry** — every accepted ticket completes, even the ones still
    /// queued when shutdown began.
    pub fn run(mut self, ctl: &RunCtl, active_execs: &AtomicUsize) -> ThreadStats {
        // Decrement on every exit path, unwinding included: a panicking
        // exec thread must not leave CC threads waiting forever on an
        // `active_execs` count that can no longer reach zero. The same
        // unwind also raises `RunCtl::mark_failed` so a CC thread blocked
        // pushing grants into this (now consumer-less) thread's ring can
        // discard and exit instead of spinning forever.
        struct ActiveGuard<'g>(&'g AtomicUsize, &'g RunCtl);
        impl Drop for ActiveGuard<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.1.mark_failed();
                }
                self.0.fetch_sub(1, Ordering::AcqRel);
            }
        }
        let _active = ActiveGuard(active_execs, ctl);
        let mut timer = PhaseTimer::start(Phase::Locking);
        let mut backoff = Backoff::new();
        let mut in_window = false;
        // One quantum per iteration: drain grant batches, admit up to the
        // in-flight cap, then flush every staged request as slices.
        let drain_budget = self.cfg.max_inflight.max(1);
        loop {
            if !in_window && ctl.is_measuring() {
                self.stats.reset_window();
                timer = PhaseTimer::start(Phase::Locking);
                in_window = true;
            }
            if !self.post_stop && ctl.is_stopped() && self.admit.drain_on_stop() {
                self.post_stop = true;
            }
            let mut progress = false;
            loop {
                let mut resp_buf = std::mem::take(&mut self.resp_buf);
                let drained = self.from_cc.drain_round(&mut resp_buf, drain_budget);
                for resp in resp_buf.drain(..) {
                    self.on_response(resp, &mut timer);
                }
                self.resp_buf = resp_buf;
                if drained == 0 {
                    break;
                }
                progress = true;
            }
            let stopped = ctl.is_stopped();
            let draining = stopped && self.admit.drain_on_stop();
            if !stopped || (draining && self.admit.has_backlog()) {
                while self.inflight < self.cfg.max_inflight && self.start_run(&mut timer) {
                    progress = true;
                }
            }
            // Durable-release pass: commits whose covering group fsync
            // landed since the last quantum become client-visible now.
            progress |= self.release_durable() > 0;
            self.flush_completions();
            if stopped
                && self.inflight == 0
                && !(self.admit.drain_on_stop() && self.admit.has_backlog())
                && self.completion_overflow.is_empty()
                && self.pending_durable.is_empty()
            {
                // The last commits' releases may still be staged. Parked
                // completions hold the thread alive until the shutdown
                // drain makes room — every ticket is delivered.
                self.flush_sends();
                break;
            }
            // Publish the quantum's sends before polling again or parking:
            // responses can only arrive for flushed requests.
            self.flush_sends();
            if progress {
                backoff.reset();
            } else {
                timer.switch(&mut self.stats, Phase::Waiting);
                backoff.snooze();
            }
        }
        debug_assert!(self.send_buf.iter().all(|b| b.is_empty()));
        timer.finish(&mut self.stats);
        // Lifetime counter (like `committed_all`): how often adaptive
        // admission switched policy over the whole run.
        self.stats.admission_switches = self.admit.switches();
        self.stats
    }

    /// Admit the next run and fire its first lock request. The admission
    /// policy decides *which* transactions those are and hands over the
    /// plans it produced — no re-planning here. A run of several
    /// same-class transactions acquires the union of its footprints in
    /// one round and executes back-to-back under it (local
    /// serialization). Returns `false` when the source had nothing to
    /// admit (client ingest ring dry) — the caller parks instead of
    /// spinning.
    fn start_run(&mut self, timer: &mut PhaseTimer) -> bool {
        timer.switch(&mut self.stats, Phase::Locking);
        let headroom = (self.cfg.max_inflight - self.inflight).max(1);
        let run = self.admit.next_run(self.db, headroom);
        if run.is_empty() {
            return false;
        }
        let accesses: AccessSet;
        let fused = match run.as_slice() {
            [single] => &single.plan.accesses,
            many => {
                accesses = AccessSet::from_unsorted(
                    many.iter()
                        .flat_map(|a| a.plan.accesses.entries().iter().copied())
                        .collect(),
                );
                &accesses
            }
        };
        let lock_plan = self.build_lock_plan(fused);
        debug_assert!(!lock_plan.is_empty(), "programs always lock something");

        let slot = self.free.pop().expect("inflight cap exceeded");
        let gen = self.fresh_gen();
        self.inflight += run.len();
        self.slots[slot as usize] = Some(Inflight {
            txns: run,
            lock_plan: Arc::clone(&lock_plan),
            gen,
            retries: Vec::new(),
        });
        self.send_acquire(&lock_plan, slot, gen, 0);
        true
    }

    fn send_acquire(&mut self, lock_plan: &Arc<LockPlan>, slot: u16, gen: u32, span_idx: u16) {
        let cc = lock_plan.spans()[span_idx as usize].cc;
        self.send(
            cc as usize,
            CcRequest::Acquire {
                token: Token {
                    exec: self.exec_id,
                    slot,
                    gen,
                },
                plan: Arc::clone(lock_plan),
                span_idx,
                forward: self.cfg.forwarding,
                waiters: 0,
            },
        );
    }

    fn send_releases(&mut self, lock_plan: &Arc<LockPlan>, slot: u16, gen: u32) {
        for i in 0..lock_plan.spans().len() {
            let cc = lock_plan.spans()[i].cc;
            self.send(
                cc as usize,
                CcRequest::Release {
                    token: Token {
                        exec: self.exec_id,
                        slot,
                        gen,
                    },
                    plan: Arc::clone(lock_plan),
                    span_idx: i as u16,
                },
            );
        }
    }

    fn on_response(&mut self, resp: ExecResponse, timer: &mut PhaseTimer) {
        let ExecResponse::Granted {
            slot,
            span_idx,
            waiters,
        } = resp;
        // The grant's deferral count is the contention signal: fold it
        // into the adaptive epoch counters (no-op for static policies)
        // and the run stats. Without forwarding each span reports its own
        // share, so summing per-grant stays correct in both modes.
        self.admit.note_lock_waits(waiters);
        self.stats.lock_waits += waiters as u64;
        // Without forwarding, the execution thread mediates each span
        // itself: 2·Ncc message delays (Section 3.3's unoptimized mode).
        if !self.cfg.forwarding {
            let next = span_idx as usize + 1;
            let lock_plan = {
                let inf = self.slots[slot as usize]
                    .as_ref()
                    .expect("grant for free slot");
                if next < inf.lock_plan.spans().len() {
                    Some((Arc::clone(&inf.lock_plan), inf.gen))
                } else {
                    None
                }
            };
            if let Some((lp, gen)) = lock_plan {
                timer.switch(&mut self.stats, Phase::Locking);
                self.send_acquire(&lp, slot, gen, next as u16);
                return;
            }
        }

        // All locks held: run the whole run back-to-back (local
        // serialization — one acquire/release round for every
        // transaction in it).
        let mut inf = self.slots[slot as usize]
            .take()
            .expect("grant for free slot");
        timer.switch(&mut self.stats, Phase::Execution);
        for txn in inf.txns.drain(..) {
            match execute_planned(&txn.program, self.db, &txn.plan) {
                Ok(v) => {
                    std::hint::black_box(v);
                    self.stats.committed_all += 1;
                    self.commit_batch.push((txn.ticket, txn.started));
                    if self.log.is_some() {
                        // Command logging: the program *is* the record
                        // (effects are replayed, not stored).
                        self.log_batch.push(LoggedCommit {
                            ticket: txn.ticket.map(|t| t.0),
                            program: txn.program,
                        });
                    }
                    self.inflight -= 1;
                }
                Err(AbortKind::OllpMismatch) => {
                    // The estimate was wrong (Section 3.2); the rest of
                    // the run is unaffected. Queue the mismatch for a
                    // standalone retry after the fused release.
                    self.stats.aborts_ollp += 1;
                    inf.retries.push(txn);
                }
                Err(other) => unreachable!("planned execution abort: {other:?}"),
            }
        }
        timer.switch(&mut self.stats, Phase::Locking);
        // Group commit, ordered for crash consistency: the run's record
        // is appended (and, in `log+fsync` mode, made durable) while the
        // run's locks are still held and before any completion releases.
        // Holding the locks across the append makes the log order
        // conflict-consistent — a conflicting successor cannot execute,
        // let alone log, until our releases land; gating the completions
        // makes "client saw it commit" imply "record covers it".
        let mut append_lsn = 0u64;
        if let Some(log) = &self.log {
            if !self.log_batch.is_empty() {
                // Panic on failure: the durability contract for these
                // already-executed commits just broke, and this thread
                // has no way to un-execute them. The panic surfaces as a
                // typed `EngineError::WorkerPanicked` at shutdown.
                let receipt = log
                    .append_run(&mut self.log_batch)
                    .unwrap_or_else(|e| panic!("command-log append failed: {e}"));
                append_lsn = receipt.lsn;
                // Stat counters share the `committed` window (post-stop
                // drain appends still happen — durability — but don't
                // count), so `committed / log_records` is an unbiased
                // amortization factor in both run modes.
                if !self.post_stop {
                    self.stats.log_records += 1;
                    self.stats.log_bytes += receipt.bytes;
                    self.stats.log_flushes += u64::from(receipt.synced);
                }
            }
        }
        // Commit point: stamp latency and release completions *now* —
        // after the append/fsync — so under `log+fsync` the histograms
        // carry the durability wait. FIFO runs hold one transaction, so
        // their stamping point is unchanged; a fused multi-transaction
        // run stamps every member at the run's release point, which is
        // when its completion becomes client-visible — run-mates'
        // execution time is genuinely part of that latency.
        //
        // Group-sync mode inverts the flush: the append only published a
        // watermark, so the run's completions park in `pending_durable`
        // until the coordinator's fsync covers `append_lsn` — the lock
        // releases below still go out now (the paper's early lock
        // release: successors may execute, they just can't report before
        // their own later log position syncs).
        if self.group_sync {
            let appended_at = std::time::Instant::now();
            for (ticket, started) in self.commit_batch.drain(..) {
                self.pending_durable
                    .push_back((ticket, started, appended_at, append_lsn));
            }
            self.release_durable();
        } else {
            let mut ready = std::mem::take(&mut self.commit_batch);
            for (ticket, started) in ready.drain(..) {
                let latency_ns = started.elapsed().as_nanos() as u64;
                if !self.post_stop {
                    self.stats.committed += 1;
                    self.stats.latency.record(latency_ns);
                }
                if let Some(ticket) = ticket {
                    self.deliver_completion(Completion { ticket, latency_ns });
                }
            }
            self.commit_batch = ready;
        }
        self.send_releases(&inf.lock_plan, slot, inf.gen);
        self.start_retry(inf, slot);
    }

    /// Restart the next queued OLLP mismatch on `slot`, or free the slot.
    ///
    /// Re-plan with the corrected estimate and re-acquire under a fresh
    /// token generation. The retry's direct acquire is ordered behind the
    /// releases on its own exec→CC ring; where the retry reaches a CC
    /// thread through forwarding instead, the fresh generation makes it
    /// an ordinary conflicting transaction that parks until the in-flight
    /// release drains. Mismatches are rare, so retries run one at a time
    /// (runs of one) rather than re-fusing.
    fn start_retry(&mut self, mut inf: Inflight, slot: u16) {
        let Some(txn) = inf.retries.pop() else {
            self.slots[slot as usize] = None;
            self.free.push(slot);
            return;
        };
        let plan = self.admit.replan(&txn.program, self.db);
        let lock_plan = self.build_lock_plan(&plan.accesses);
        let gen = self.fresh_gen();
        self.slots[slot as usize] = Some(Inflight {
            txns: vec![Admitted {
                program: txn.program,
                plan,
                ticket: txn.ticket,
                started: txn.started,
            }],
            lock_plan: Arc::clone(&lock_plan),
            gen,
            retries: inf.retries,
        });
        self.send_acquire(&lock_plan, slot, gen, 0);
    }
}
