//! The concurrency-control thread: a latch-free, single-owner lock
//! manager partition.
//!
//! "Every lock acquisition and release request for a particular object is
//! serviced by a single concurrency control thread; reads and writes of
//! an object's meta-data are restricted to one thread" (Section 3.1). The
//! state here is deliberately plain — no atomics, no latches — because
//! only the owning thread ever touches it. [`CcState`] is the pure state
//! machine (unit-testable single-threadedly); the engine drives it from
//! the message loop.

use std::collections::VecDeque;
use std::sync::Arc;

use orthrus_common::{FxHashMap, Key, LockMode};

use crate::msg::{CcRequest, ExecResponse, Token};
use crate::plan::LockPlan;

/// An outgoing message produced while handling a request.
pub enum OutMsg {
    /// Forward an acquire to the next CC thread in the chain.
    ToCc { cc: u32, req: CcRequest },
    /// Answer an execution thread.
    ToExec { exec: u16, resp: ExecResponse },
}

/// A transaction whose span is partially granted: the countdown to
/// completion.
struct Pending {
    token: Token,
    plan: Arc<LockPlan>,
    span_idx: u16,
    forward: bool,
    remaining: u32,
    /// Grant-deferral events accumulated so far (earlier spans in the
    /// chain plus this span's ungranted locks) — reported to the
    /// execution thread with the grant as the contention signal.
    waiters: u32,
}

struct Waiter {
    token: u64, // Token::pack()
    mode: LockMode,
    pending_idx: u32,
}

#[derive(Default)]
struct CcEntry {
    holders: Vec<(u64, LockMode)>,
    waiters: VecDeque<Waiter>,
}

impl CcEntry {
    fn compatible(&self, mode: LockMode) -> bool {
        self.holders.iter().all(|&(_, m)| !m.conflicts_with(mode))
    }

    fn grantable(&self, mode: LockMode) -> bool {
        self.waiters.is_empty() && self.compatible(mode)
    }
}

/// The lock state owned by one CC thread.
pub struct CcState {
    id: u32,
    table: FxHashMap<Key, CcEntry>,
    pending: Vec<Option<Pending>>,
    free: Vec<u32>,
}

impl CcState {
    /// Create the state for CC thread `id`, pre-sizing for `capacity`
    /// distinct keys.
    pub fn new(id: u32, capacity: usize) -> Self {
        let mut table = FxHashMap::default();
        table.reserve(capacity);
        CcState {
            id,
            table,
            pending: Vec::new(),
            free: Vec::new(),
        }
    }

    /// This CC thread's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of partially-granted transactions parked here (tests).
    pub fn pending_count(&self) -> usize {
        self.pending.iter().filter(|p| p.is_some()).count()
    }

    /// Handle one request, appending any outgoing messages to `out`.
    pub fn handle(&mut self, req: CcRequest, out: &mut Vec<OutMsg>) {
        match req {
            CcRequest::Acquire {
                token,
                plan,
                span_idx,
                forward,
                waiters,
            } => self.handle_acquire(token, plan, span_idx, forward, waiters, out),
            CcRequest::Release {
                token,
                plan,
                span_idx,
            } => self.handle_release(token, &plan, span_idx, out),
        }
    }

    fn handle_acquire(
        &mut self,
        token: Token,
        plan: Arc<LockPlan>,
        span_idx: u16,
        forward: bool,
        waiters: u32,
        out: &mut Vec<OutMsg>,
    ) {
        debug_assert_eq!(plan.spans()[span_idx as usize].cc, self.id);
        // Pass 1: how many of the span's locks must wait? (Single-threaded
        // state: nothing can change between the passes.)
        let mut ungranted = 0u32;
        for &(key, mode) in plan.span_entries(span_idx as usize) {
            let grantable = self
                .table
                .get(&key)
                .map(|e| e.grantable(mode))
                .unwrap_or(true);
            if !grantable {
                ungranted += 1;
            }
        }

        let pending_idx = if ungranted > 0 {
            Some(self.alloc_pending(Pending {
                token,
                plan: Arc::clone(&plan),
                span_idx,
                forward,
                remaining: ungranted,
                waiters: waiters.saturating_add(ungranted),
            }))
        } else {
            None
        };

        // Pass 2: grant or enqueue.
        let packed = token.pack();
        for &(key, mode) in plan.span_entries(span_idx as usize) {
            let entry = self.table.entry(key).or_default();
            debug_assert!(
                !entry.holders.iter().any(|&(t, _)| t == packed),
                "token {packed:#x} re-acquiring key {key:#x}"
            );
            if entry.grantable(mode) {
                entry.holders.push((packed, mode));
            } else {
                entry.waiters.push_back(Waiter {
                    token: packed,
                    mode,
                    pending_idx: pending_idx.unwrap(),
                });
            }
        }

        if ungranted == 0 {
            self.complete(token, &plan, span_idx, forward, waiters, out);
        }
        // "The response may take a while; the lock acquisition request may
        // have to wait for prior conflicting requests to release locks."
    }

    fn handle_release(
        &mut self,
        token: Token,
        plan: &Arc<LockPlan>,
        span_idx: u16,
        out: &mut Vec<OutMsg>,
    ) {
        debug_assert_eq!(plan.spans()[span_idx as usize].cc, self.id);
        let packed = token.pack();
        // Completions are deferred past the table borrow; emission order
        // within one release step is not semantically meaningful.
        let mut done: Vec<Pending> = Vec::new();
        for &(key, _) in plan.span_entries(span_idx as usize) {
            let entry = self
                .table
                .get_mut(&key)
                .expect("release of never-acquired key");
            let before = entry.holders.len();
            entry.holders.retain(|&(t, _)| t != packed);
            debug_assert_eq!(before, entry.holders.len() + 1, "unheld release");

            // Grant the longest compatible prefix of the queue.
            while let Some(front) = entry.waiters.front() {
                if !entry.compatible(front.mode) {
                    break;
                }
                let w = entry.waiters.pop_front().unwrap();
                entry.holders.push((w.token, w.mode));
                let slot = &mut self.pending[w.pending_idx as usize];
                let finished = {
                    let p = slot.as_mut().expect("waiter points at freed pending");
                    p.remaining -= 1;
                    p.remaining == 0
                };
                if finished {
                    done.push(slot.take().unwrap());
                    self.free.push(w.pending_idx);
                }
            }
            // Entries are left in the map when empty (capacity reuse).
        }
        for p in done {
            self.complete(p.token, &p.plan, p.span_idx, p.forward, p.waiters, out);
        }
    }

    /// Every lock of the span is held: forward down the chain or answer
    /// the execution thread (Section 3.3).
    fn complete(
        &mut self,
        token: Token,
        plan: &Arc<LockPlan>,
        span_idx: u16,
        forward: bool,
        waiters: u32,
        out: &mut Vec<OutMsg>,
    ) {
        let next = span_idx as usize + 1;
        if forward && next < plan.spans().len() {
            out.push(OutMsg::ToCc {
                cc: plan.spans()[next].cc,
                req: CcRequest::Acquire {
                    token,
                    plan: Arc::clone(plan),
                    span_idx: next as u16,
                    forward,
                    waiters,
                },
            });
        } else {
            out.push(OutMsg::ToExec {
                exec: token.exec,
                resp: ExecResponse::Granted {
                    slot: token.slot,
                    span_idx,
                    waiters,
                },
            });
        }
    }

    fn alloc_pending(&mut self, p: Pending) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.pending[i as usize] = Some(p);
                i
            }
            None => {
                self.pending.push(Some(p));
                (self.pending.len() - 1) as u32
            }
        }
    }

    /// Holders of a key (tests/diagnostics).
    pub fn holders_of(&self, key: Key) -> Vec<u64> {
        self.table
            .get(&key)
            .map(|e| e.holders.iter().map(|&(t, _)| t).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_txn::AccessSet;

    fn plan_on_cc0(keys: &[(Key, LockMode)]) -> Arc<LockPlan> {
        Arc::new(LockPlan::build(
            &AccessSet::from_unsorted(keys.to_vec()),
            |_| 0,
        ))
    }

    fn tok(exec: u16, slot: u16) -> Token {
        Token { exec, slot, gen: 0 }
    }

    fn tok_gen(exec: u16, slot: u16, gen: u32) -> Token {
        Token { exec, slot, gen }
    }

    fn acquire(token: Token, plan: &Arc<LockPlan>, span: u16) -> CcRequest {
        CcRequest::Acquire {
            token,
            plan: Arc::clone(plan),
            span_idx: span,
            forward: true,
            waiters: 0,
        }
    }

    fn release(token: Token, plan: &Arc<LockPlan>, span: u16) -> CcRequest {
        CcRequest::Release {
            token,
            plan: Arc::clone(plan),
            span_idx: span,
        }
    }

    #[test]
    fn uncontended_acquire_responds_immediately() {
        let mut cc = CcState::new(0, 64);
        let plan = plan_on_cc0(&[(1, LockMode::Exclusive), (2, LockMode::Exclusive)]);
        let mut out = Vec::new();
        cc.handle(acquire(tok(0, 0), &plan, 0), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            OutMsg::ToExec {
                exec: 0,
                resp: ExecResponse::Granted {
                    slot: 0,
                    span_idx: 0,
                    waiters: 0,
                }
            }
        ));
        assert_eq!(cc.pending_count(), 0);
    }

    #[test]
    fn deferred_grants_report_their_waiter_count() {
        // Two of the second transaction's three locks conflict with the
        // holder; the eventual grant must carry waiters = 2 (the
        // contention signal adaptive admission consumes).
        let mut cc = CcState::new(0, 64);
        let holder = plan_on_cc0(&[(1, LockMode::Exclusive), (2, LockMode::Exclusive)]);
        let contender = plan_on_cc0(&[
            (1, LockMode::Exclusive),
            (2, LockMode::Exclusive),
            (3, LockMode::Exclusive),
        ]);
        let mut out = Vec::new();
        cc.handle(acquire(tok(0, 0), &holder, 0), &mut out);
        out.clear();
        cc.handle(acquire(tok(0, 1), &contender, 0), &mut out);
        assert!(out.is_empty());
        cc.handle(release(tok(0, 0), &holder, 0), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            OutMsg::ToExec {
                resp: ExecResponse::Granted {
                    slot: 1,
                    waiters: 2,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn conflicting_acquire_waits_until_release() {
        let mut cc = CcState::new(0, 64);
        let plan1 = plan_on_cc0(&[(7, LockMode::Exclusive)]);
        let plan2 = plan_on_cc0(&[(7, LockMode::Exclusive), (8, LockMode::Exclusive)]);
        let mut out = Vec::new();
        cc.handle(acquire(tok(0, 0), &plan1, 0), &mut out);
        out.clear();
        cc.handle(acquire(tok(0, 1), &plan2, 0), &mut out);
        assert!(out.is_empty(), "conflicting span must park");
        assert_eq!(cc.pending_count(), 1);
        // Key 8 was granted eagerly even though 7 waits.
        assert_eq!(cc.holders_of(8), vec![tok(0, 1).pack()]);
        // Release 7 → slot 1 completes.
        cc.handle(release(tok(0, 0), &plan1, 0), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            OutMsg::ToExec {
                resp: ExecResponse::Granted { slot: 1, .. },
                ..
            }
        ));
        assert_eq!(cc.pending_count(), 0);
        assert_eq!(cc.holders_of(7), vec![tok(0, 1).pack()]);
    }

    #[test]
    fn shared_holders_coexist_and_batch_grant() {
        let mut cc = CcState::new(0, 64);
        let w = plan_on_cc0(&[(5, LockMode::Exclusive)]);
        let r1 = plan_on_cc0(&[(5, LockMode::Shared)]);
        let r2 = plan_on_cc0(&[(5, LockMode::Shared)]);
        let mut out = Vec::new();
        cc.handle(acquire(tok(0, 0), &w, 0), &mut out);
        out.clear();
        cc.handle(acquire(tok(0, 1), &r1, 0), &mut out);
        cc.handle(acquire(tok(0, 2), &r2, 0), &mut out);
        assert!(out.is_empty());
        cc.handle(release(tok(0, 0), &w, 0), &mut out);
        assert_eq!(out.len(), 2, "both shared waiters granted together");
        assert_eq!(cc.holders_of(5).len(), 2);
    }

    #[test]
    fn fifo_prevents_shared_jumping_queued_exclusive() {
        let mut cc = CcState::new(0, 64);
        let r0 = plan_on_cc0(&[(3, LockMode::Shared)]);
        let w = plan_on_cc0(&[(3, LockMode::Exclusive)]);
        let r1 = plan_on_cc0(&[(3, LockMode::Shared)]);
        let mut out = Vec::new();
        cc.handle(acquire(tok(0, 0), &r0, 0), &mut out); // shared holder
        out.clear();
        cc.handle(acquire(tok(0, 1), &w, 0), &mut out); // queued writer
        cc.handle(acquire(tok(0, 2), &r1, 0), &mut out); // must queue too
        assert!(out.is_empty());
        cc.handle(release(tok(0, 0), &r0, 0), &mut out);
        // Writer granted, reader still parked.
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            OutMsg::ToExec {
                resp: ExecResponse::Granted { slot: 1, .. },
                ..
            }
        ));
        out.clear();
        cc.handle(release(tok(0, 1), &w, 0), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn forwarding_chains_to_next_cc() {
        // Plan spanning cc0 and cc1 (cc_of = key % 2).
        let plan = Arc::new(LockPlan::build(
            &AccessSet::from_unsorted(vec![
                (2, LockMode::Exclusive), // cc0
                (3, LockMode::Exclusive), // cc1
            ]),
            |k| (k % 2) as u32,
        ));
        let mut cc0 = CcState::new(0, 64);
        let mut out = Vec::new();
        cc0.handle(
            CcRequest::Acquire {
                token: tok(1, 4),
                plan: Arc::clone(&plan),
                span_idx: 0,
                forward: true,
                waiters: 0,
            },
            &mut out,
        );
        assert_eq!(out.len(), 1);
        match &out[0] {
            OutMsg::ToCc {
                cc,
                req: CcRequest::Acquire { span_idx, .. },
            } => {
                assert_eq!(*cc, 1);
                assert_eq!(*span_idx, 1);
            }
            _ => panic!("expected forward to cc1"),
        }
        // cc1 completes the chain with a single response to the exec.
        let mut cc1 = CcState::new(1, 64);
        let fwd = out.pop().unwrap();
        let OutMsg::ToCc { req, .. } = fwd else {
            unreachable!()
        };
        cc1.handle(req, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            OutMsg::ToExec {
                exec: 1,
                resp: ExecResponse::Granted {
                    slot: 4,
                    span_idx: 1,
                    waiters: 0,
                }
            }
        ));
    }

    #[test]
    fn no_forwarding_answers_exec_per_span() {
        let plan = Arc::new(LockPlan::build(
            &AccessSet::from_unsorted(vec![(2, LockMode::Exclusive), (3, LockMode::Exclusive)]),
            |k| (k % 2) as u32,
        ));
        let mut cc0 = CcState::new(0, 64);
        let mut out = Vec::new();
        cc0.handle(
            CcRequest::Acquire {
                token: tok(0, 0),
                plan,
                span_idx: 0,
                forward: false,
                waiters: 0,
            },
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            OutMsg::ToExec {
                resp: ExecResponse::Granted { span_idx: 0, .. },
                ..
            }
        ));
    }

    #[test]
    fn slot_reuse_parks_behind_stale_holder() {
        // Regression test for the forwarding/slot-reuse race: exec 0
        // committed transaction (slot 3, gen 0) and enqueued its release,
        // then reused slot 3 for a new transaction whose *forwarded*
        // acquire arrives at this CC thread before the release does. The
        // new generation must be treated as an ordinary conflicting
        // transaction, parked, and granted once the release drains.
        let mut cc = CcState::new(0, 64);
        let plan = plan_on_cc0(&[(9, LockMode::Exclusive)]);
        let mut out = Vec::new();
        cc.handle(acquire(tok_gen(0, 3, 0), &plan, 0), &mut out);
        out.clear();

        // The successor (same exec, same slot, new gen) arrives early.
        cc.handle(acquire(tok_gen(0, 3, 1), &plan, 0), &mut out);
        assert!(out.is_empty(), "successor must park, not self-grant");
        assert_eq!(cc.pending_count(), 1);

        // The in-flight release of gen 0 lands; gen 1 is granted.
        cc.handle(release(tok_gen(0, 3, 0), &plan, 0), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            OutMsg::ToExec {
                resp: ExecResponse::Granted { slot: 3, .. },
                ..
            }
        ));
        assert_eq!(cc.holders_of(9), vec![tok_gen(0, 3, 1).pack()]);
    }

    #[test]
    fn pending_slab_reuses_slots() {
        let mut cc = CcState::new(0, 64);
        let holder = plan_on_cc0(&[(1, LockMode::Exclusive)]);
        let waiter_plan = plan_on_cc0(&[(1, LockMode::Exclusive)]);
        let mut out = Vec::new();
        for round in 0..10 {
            cc.handle(acquire(tok(0, 0), &holder, 0), &mut out);
            cc.handle(acquire(tok(0, 1), &waiter_plan, 0), &mut out);
            cc.handle(release(tok(0, 0), &holder, 0), &mut out);
            cc.handle(release(tok(0, 1), &waiter_plan, 0), &mut out);
            assert_eq!(cc.pending_count(), 0, "round {round}");
        }
        assert!(cc.pending.len() <= 2, "slab must not grow unboundedly");
    }
}
