//! The message vocabulary between execution and CC threads.
//!
//! Messages are small: a token identifying the in-flight transaction slot
//! on its execution thread, the span cursor, and an `Arc` of the immutable
//! lock plan. The `Arc` is this reproduction's equivalent of the paper's
//! "message labelled T1" — a handle to the transaction's lock request
//! list, never a shared mutable structure.

use std::sync::Arc;

use crate::plan::LockPlan;

/// Identifies an in-flight transaction: (execution thread, slot,
/// generation).
///
/// The generation disambiguates slot reuse: an execution thread frees a
/// slot (or retries after an OLLP mismatch) as soon as its `Release`
/// messages are *enqueued*, and the successor transaction's acquire can
/// reach a CC thread through the **forwarding path** — a different ring —
/// before those releases drain. The CC thread must treat the successor as
/// an ordinary conflicting transaction (it parks behind the stale holder
/// and is granted when the in-flight release arrives), not as the same
/// transaction double-acquiring. Generations make the two cases
/// distinguishable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token {
    pub exec: u16,
    pub slot: u16,
    pub gen: u32,
}

impl Token {
    #[inline]
    pub fn pack(self) -> u64 {
        (self.gen as u64) << 32 | (self.exec as u64) << 16 | self.slot as u64
    }
}

/// A request processed by a CC thread.
pub enum CcRequest {
    /// Acquire the locks of `plan.span(span_idx)` on behalf of `token`.
    /// When every lock in the span is granted: if `forward` and a later
    /// span exists, forward to the next CC thread (Section 3.3);
    /// otherwise answer the execution thread.
    Acquire {
        token: Token,
        plan: Arc<LockPlan>,
        span_idx: u16,
        forward: bool,
        /// Grant-deferral events (locks that could not be granted
        /// immediately) accumulated at *earlier* CC threads in the
        /// forwarding chain. Execution threads send `0`; each CC thread
        /// adds its span's deferrals before forwarding, so the final
        /// grant carries the transaction's whole conflict footprint — the
        /// contention signal adaptive admission feeds on.
        waiters: u32,
    },
    /// Release the locks of `plan.span(span_idx)`. "Lock release requests
    /// are satisfied immediately" — no response is sent.
    Release {
        token: Token,
        plan: Arc<LockPlan>,
        span_idx: u16,
    },
}

/// A response delivered to an execution thread.
#[derive(Debug)]
pub enum ExecResponse {
    /// All locks up to and including `span_idx` are held. With forwarding
    /// this arrives once (from the last CC in the chain); without it, once
    /// per span.
    Granted {
        slot: u16,
        span_idx: u16,
        /// Grant-deferral events this acquisition experienced: how many of
        /// its locks had to wait behind a holder or a queued waiter. With
        /// forwarding, the count spans the whole CC chain; without it,
        /// each per-span grant reports its own span's deferrals (the sum
        /// over spans is the same signal). Execution threads aggregate
        /// these into per-epoch conflict counters for adaptive admission.
        waiters: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_packs_uniquely() {
        let a = Token {
            exec: 1,
            slot: 2,
            gen: 0,
        }
        .pack();
        let b = Token {
            exec: 2,
            slot: 1,
            gen: 0,
        }
        .pack();
        let c = Token {
            exec: 1,
            slot: 3,
            gen: 0,
        }
        .pack();
        let d = Token {
            exec: 1,
            slot: 2,
            gen: 1,
        }
        .pack();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d, "generations distinguish slot reuse");
        assert_eq!(
            Token {
                exec: 1,
                slot: 2,
                gen: 0
            }
            .pack(),
            a
        );
    }

    #[test]
    fn messages_are_small() {
        // One Arc + a few words: cheap to move through the rings.
        assert!(std::mem::size_of::<CcRequest>() <= 32);
        assert!(std::mem::size_of::<ExecResponse>() <= 8);
    }
}
