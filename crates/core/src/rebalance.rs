//! Skew-aware CC-thread assignment planning.
//!
//! "Concurrency control threads may be subject to over- and
//! under-utilization due to workload skew. ORTHRUS can re-use prior
//! techniques for addressing utilization imbalance in shared-nothing
//! systems in order to partition data among concurrency control threads"
//! (Section 3.3, citing Schism/E-store-style planners [6, 37, 43]).
//!
//! This module is the minimal faithful version of such a planner: sample
//! the workload, histogram lock-request weight over a power-of-two bucket
//! space (`fx_hash(key) & mask`), and pack buckets onto CC threads with
//! the greedy longest-processing-time rule (heaviest bucket to the
//! currently lightest CC thread). The result is a [`CcAssignment::Balanced`]
//! table the engine consults on its planning path.

use std::sync::Arc;

use orthrus_common::{fx_hash_u64, XorShift64};
use orthrus_txn::{plan_accesses, Database};
use orthrus_workload::Spec;

use crate::config::CcAssignment;

/// Histogram of sampled lock-request weight per hash bucket.
#[derive(Debug, Clone)]
pub struct LoadHistogram {
    weights: Vec<u64>,
}

impl LoadHistogram {
    /// Build by sampling `samples` transactions from `spec` and planning
    /// their access sets (reconnaissance included, so TPC-C by-name
    /// lookups weigh the right rows). `n_buckets` must be a power of two.
    pub fn sample(spec: &Spec, db: &Database, n_buckets: usize, samples: usize, seed: u64) -> Self {
        assert!(n_buckets.is_power_of_two(), "bucket count must be 2^k");
        assert!(samples > 0);
        let mut weights = vec![0u64; n_buckets];
        let mut gen = spec.generator(seed ^ 0x7265_6261, 0);
        let mut rng = XorShift64::new(seed ^ 0x6c61_6e63);
        for _ in 0..samples {
            let program = gen.next_program();
            let plan = plan_accesses(&program, db, 0, &mut rng);
            for &(key, _) in plan.accesses.entries() {
                weights[(fx_hash_u64(key) as usize) & (n_buckets - 1)] += 1;
            }
        }
        LoadHistogram { weights }
    }

    /// The per-bucket weights.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Per-CC load induced by an assignment table over this histogram.
    pub fn cc_load(&self, table: &[u32], n_cc: usize) -> Vec<u64> {
        assert_eq!(table.len(), self.weights.len());
        let mut load = vec![0u64; n_cc];
        for (b, &w) in self.weights.iter().enumerate() {
            load[table[b] as usize] += w;
        }
        load
    }

    /// Max/mean load ratio of an assignment (1.0 = perfectly balanced).
    pub fn imbalance(&self, table: &[u32], n_cc: usize) -> f64 {
        let load = self.cc_load(table, n_cc);
        let total: u64 = load.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / n_cc as f64;
        *load.iter().max().unwrap() as f64 / mean
    }
}

/// Greedy LPT packing of histogram buckets onto `n_cc` CC threads.
/// Zero-weight buckets are sprayed round-robin so every key remains
/// owned by a valid thread.
pub fn pack_buckets(hist: &LoadHistogram, n_cc: usize) -> Arc<[u32]> {
    assert!(n_cc >= 1);
    let n_buckets = hist.weights.len();
    let mut order: Vec<usize> = (0..n_buckets).collect();
    order.sort_unstable_by_key(|&b| std::cmp::Reverse(hist.weights[b]));
    let mut table = vec![0u32; n_buckets];
    let mut load = vec![0u64; n_cc];
    let mut rr = 0u32;
    for b in order {
        if hist.weights[b] == 0 {
            table[b] = rr % n_cc as u32;
            rr += 1;
            continue;
        }
        let lightest = (0..n_cc).min_by_key(|&c| load[c]).unwrap();
        table[b] = lightest as u32;
        load[lightest] += hist.weights[b];
    }
    table.into()
}

/// One-call skew-aware planner: sample the workload, pack, and return the
/// assignment (Section 3.3's utilization-imbalance answer).
pub fn balanced_assignment(
    spec: &Spec,
    db: &Database,
    n_cc: usize,
    n_buckets: usize,
    samples: usize,
    seed: u64,
) -> CcAssignment {
    let hist = LoadHistogram::sample(spec, db, n_buckets, samples, seed);
    CcAssignment::Balanced(pack_buckets(&hist, n_cc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_storage::Table;
    use orthrus_workload::MicroSpec;

    fn zipf_setup() -> (Spec, Database) {
        let spec = Spec::Micro(MicroSpec::zipf(4096, 8, 0.99, false));
        let db = Database::Flat(Table::new(4096, 64));
        (spec, db)
    }

    #[test]
    fn histogram_counts_all_sampled_accesses() {
        let (spec, db) = zipf_setup();
        let hist = LoadHistogram::sample(&spec, &db, 256, 500, 7);
        let total: u64 = hist.weights().iter().sum();
        assert_eq!(total, 500 * 8, "8 distinct keys per sampled txn");
    }

    #[test]
    fn packing_beats_modulo_under_skew() {
        let (spec, db) = zipf_setup();
        let hist = LoadHistogram::sample(&spec, &db, 256, 2_000, 7);
        let n_cc = 4;
        let packed = pack_buckets(&hist, n_cc);
        // The naive placement: bucket b → b % n_cc.
        let modulo: Vec<u32> = (0..256).map(|b| (b % n_cc) as u32).collect();
        let packed_imb = hist.imbalance(&packed, n_cc);
        let modulo_imb = hist.imbalance(&modulo, n_cc);
        assert!(
            packed_imb <= modulo_imb + 1e-9,
            "LPT ({packed_imb:.3}) must not lose to modulo ({modulo_imb:.3})"
        );
        assert!(
            packed_imb < 1.5,
            "packed imbalance should be modest, got {packed_imb:.3}"
        );
    }

    #[test]
    fn table_entries_are_valid_cc_ids() {
        let (spec, db) = zipf_setup();
        let CcAssignment::Balanced(table) = balanced_assignment(&spec, &db, 3, 128, 300, 5) else {
            panic!("wrong variant")
        };
        assert_eq!(table.len(), 128);
        assert!(table.iter().all(|&c| c < 3));
        // Every CC thread owns at least one bucket (round-robin spray of
        // empties plus packing of non-empties).
        for c in 0..3u32 {
            assert!(table.contains(&c), "cc {c} owns nothing");
        }
    }

    #[test]
    fn uniform_workload_packs_evenly() {
        let spec = Spec::Micro(MicroSpec::uniform(4096, 8, false));
        let db = Database::Flat(Table::new(4096, 64));
        let hist = LoadHistogram::sample(&spec, &db, 256, 2_000, 3);
        let packed = pack_buckets(&hist, 4);
        assert!(hist.imbalance(&packed, 4) < 1.1);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let (spec, db) = zipf_setup();
        let a = balanced_assignment(&spec, &db, 4, 64, 200, 9);
        let b = balanced_assignment(&spec, &db, 4, 64, 200, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bucket count must be 2^k")]
    fn rejects_non_power_of_two_buckets() {
        let (spec, db) = zipf_setup();
        let _ = LoadHistogram::sample(&spec, &db, 100, 10, 1);
    }
}
