//! Admission: which transaction enters the engine next, and with what
//! plan.
//!
//! The seed inlined admission in the execution thread — generate a
//! program, plan its accesses, occupy an in-flight slot — which admits
//! hot-key transactions blindly: under high skew their waiters pile up in
//! CC queues, burning fabric round trips on lock requests that can only
//! serialize anyway. Prasaad et al. ("Improving High Contention OLTP
//! Performance via Transaction Scheduling") show that batching
//! transactions by *conflict class* before admission recovers much of
//! that loss.
//!
//! This module lifts admission into a pluggable policy layer:
//!
//! - [`AdmissionPolicy::Fifo`] reproduces the seed's admission order
//!   exactly (same generator stream, same planning RNG stream, one
//!   generate+plan per admission, runs of one) — proptest-pinned in
//!   `crate::proptests`.
//! - [`AdmissionPolicy::ConflictBatch`] plans each transaction **once at
//!   admission** and reuses the plan downstream, derives its conflict
//!   class from the **hottest key of the planned footprint** (a decaying
//!   frequency sketch over recent footprints; ties fall back to the
//!   pre-admission [`Program::hot_key_hint`]), and drains per-class run
//!   queues back-to-back — up to `batch` per class, round-robin across
//!   classes. A drained run is handed to the execution thread as one
//!   unit, which **serializes it locally**: the union of the run's
//!   footprints is acquired in a single fused round, the run executes
//!   back-to-back under it, and one release round frees it. The hot-key
//!   convoy that cost FIFO admission one fabric round trip per waiting
//!   transaction costs one per *run* instead.
//!
//! The tradeoff is deliberate and visible in ablation A6
//! (`abl06_admission`): under low skew the fused unions hold more locks
//! for longer than independent acquisitions and FIFO wins; past the
//! contention crossover the amortized round trips dominate and
//! `ConflictBatch` wins, increasingly with skew.
//!
//! Starvation-freedom of `ConflictBatch` is structural: the admitter only
//! refills its run queues when **every** class queue is empty, and the
//! drain rotates round-robin with a per-class cap, so each refill window
//! is admitted in full — a saturated hot class can delay a cold class by
//! at most one window, never forever.

use std::collections::VecDeque;

use orthrus_common::{fx_hash_u64, Key, XorShift64};
use orthrus_txn::{plan_accesses, Database, Plan, Program};
use orthrus_workload::Gen;

/// Default conflict-class count for [`AdmissionPolicy::ConflictBatch`]:
/// enough classes that distinct hot keys rarely collide, few enough that
/// the per-class batches stay deep at a refill window of
/// `classes × batch`.
pub const DEFAULT_CONFLICT_CLASSES: usize = 8;

/// Default per-class drain batch for [`AdmissionPolicy::ConflictBatch`]:
/// matched to the default in-flight cap so one class's run can fuse into
/// a single full-depth acquisition (runs are additionally clipped to the
/// execution thread's in-flight headroom at admission time). Deeper
/// batches amortize more round trips per fused run under contention.
pub const DEFAULT_CLASS_BATCH: usize = 16;

/// How the engine admits transactions ([`crate::config::OrthrusConfig`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// The seed's admission order: generate and plan one transaction per
    /// admission, in generator order.
    Fifo,
    /// Conflict-class batched admission (Prasaad et al.): plan at
    /// admission, bucket into `classes` run queues by the hottest
    /// footprint key, drain up to `batch` same-class transactions
    /// back-to-back before rotating to the next class. Drained runs are
    /// serialized locally by the execution thread under one fused lock
    /// acquisition.
    ConflictBatch {
        /// Number of conflict classes (run queues); must be ≥ 1.
        classes: usize,
        /// Back-to-back admissions per class before rotating; must be ≥ 1.
        batch: usize,
    },
}

impl AdmissionPolicy {
    /// `ConflictBatch` with the default class/batch shape.
    pub fn conflict_batch() -> Self {
        AdmissionPolicy::ConflictBatch {
            classes: DEFAULT_CONFLICT_CLASSES,
            batch: DEFAULT_CLASS_BATCH,
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionPolicy::Fifo => write!(f, "fifo"),
            AdmissionPolicy::ConflictBatch { classes, batch } => {
                write!(f, "batch:{classes}:{batch}")
            }
        }
    }
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = String;

    /// Parse the harness's `ORTHRUS_ADMISSION` syntax: `fifo`, `batch`
    /// (default shape), or `batch:<classes>:<batch>`.
    fn from_str(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        match (head, parts.next(), parts.next(), parts.next()) {
            ("fifo", None, ..) => Ok(AdmissionPolicy::Fifo),
            ("batch" | "conflict-batch", None, ..) => Ok(AdmissionPolicy::conflict_batch()),
            ("batch" | "conflict-batch", Some(c), Some(b), None) => {
                let classes: usize = c.parse().map_err(|_| format!("bad class count {c:?}"))?;
                let batch: usize = b.parse().map_err(|_| format!("bad batch size {b:?}"))?;
                if classes == 0 || batch == 0 {
                    return Err(format!("classes and batch must be ≥ 1, got {s:?}"));
                }
                Ok(AdmissionPolicy::ConflictBatch { classes, batch })
            }
            _ => Err(format!(
                "unknown admission policy {s:?}; expected fifo | batch | batch:<classes>:<batch>"
            )),
        }
    }
}

/// One admitted transaction: the program plus the plan produced at
/// admission. The plan travels with the transaction — lock-plan
/// construction and execution reuse it instead of re-planning.
pub struct Admitted {
    pub program: Program,
    pub plan: Plan,
    /// When the transaction was generated and planned. Commit latency is
    /// measured from here, so time spent queued in a conflict-class run
    /// queue counts toward latency (FIFO-vs-ConflictBatch latency
    /// comparisons stay honest).
    pub started: std::time::Instant,
}

/// A tiny decaying frequency sketch over lock-space keys: which keys have
/// been hot in the recently planned footprints. Lets the classifier pick
/// the *hottest* key of a footprint even when the workload's skew is not
/// positional (scrambled-Zipfian popularity scatters hot keys anywhere in
/// the key space). Counters are hashed (no key set is materialized) and
/// halve periodically so the sketch tracks workload drift.
struct HotSketch {
    counts: Box<[u32; Self::LEN]>,
    observed: u32,
}

impl HotSketch {
    /// Counter-array length (power of two; collisions just merge classes,
    /// which the `% classes` projection does anyway).
    const LEN: usize = 1024;
    /// Halve every counter after this many observations.
    const DECAY_EVERY: u32 = 8192;

    fn new() -> Self {
        HotSketch {
            counts: Box::new([0; Self::LEN]),
            observed: 0,
        }
    }

    #[inline]
    fn slot(key: Key) -> usize {
        fx_hash_u64(key) as usize & (Self::LEN - 1)
    }

    #[inline]
    fn observe(&mut self, key: Key) {
        let c = &mut self.counts[Self::slot(key)];
        *c = c.saturating_add(1);
        self.observed += 1;
        if self.observed >= Self::DECAY_EVERY {
            self.observed = 0;
            for c in self.counts.iter_mut() {
                *c >>= 1;
            }
        }
    }

    #[inline]
    fn hotness(&self, key: Key) -> u32 {
        self.counts[Self::slot(key)]
    }
}

/// Per-class run queues for `ConflictBatch`.
struct RunQueues {
    queues: Vec<VecDeque<Admitted>>,
    /// Class currently draining.
    cursor: usize,
    /// Admissions left in the current class's back-to-back batch.
    budget: usize,
    /// Per-class drain cap.
    batch: usize,
    /// Total queued transactions across all classes.
    queued: usize,
    /// Which keys have been hot recently (feeds classification).
    sketch: HotSketch,
}

/// One execution thread's admission state: the program source, the
/// planning RNG (the OLLP reconnaissance noise stream), and any policy
/// queues. Owned by the thread — admission is thread-local, exactly like
/// the seed's inlined path.
pub struct Admitter {
    gen: Gen,
    plan_rng: XorShift64,
    /// OLLP estimate noise applied to admission-time planning; retries
    /// always re-plan with the corrected (noise-free) estimate.
    noise: u32,
    run_queues: Option<RunQueues>,
}

impl Admitter {
    /// Build the admission state for execution thread `exec_id`.
    ///
    /// The planning RNG is seeded exactly as the seed's `ExecThread` was,
    /// so `Fifo` admission reproduces the seed's program and plan streams
    /// bit for bit.
    pub fn new(policy: &AdmissionPolicy, gen: Gen, seed: u64, exec_id: u16, noise: u32) -> Self {
        let run_queues = match *policy {
            AdmissionPolicy::Fifo => None,
            AdmissionPolicy::ConflictBatch { classes, batch } => {
                assert!(classes >= 1 && batch >= 1, "validated by OrthrusConfig");
                Some(RunQueues {
                    queues: (0..classes).map(|_| VecDeque::new()).collect(),
                    cursor: 0,
                    budget: batch,
                    batch,
                    queued: 0,
                    sketch: HotSketch::new(),
                })
            }
        };
        Admitter {
            gen,
            plan_rng: XorShift64::for_thread(seed ^ 0x6578_6563, exec_id as usize),
            noise,
            run_queues,
        }
    }

    /// Admit the next transaction (generating and planning as the policy
    /// dictates). Infallible: generators are endless.
    pub fn next(&mut self, db: &Database) -> Admitted {
        self.next_run(db, 1).pop().expect("runs are never empty")
    }

    /// Admit the next *run*: up to `max` same-class transactions drained
    /// back-to-back, meant to be serialized locally by the execution
    /// thread under one fused lock acquisition. `Fifo` always returns a
    /// single transaction (the seed admitted one acquisition chain per
    /// transaction); `ConflictBatch` returns the current class's next
    /// `min(max, batch budget)` queued transactions.
    pub fn next_run(&mut self, db: &Database, max: usize) -> Vec<Admitted> {
        debug_assert!(max >= 1);
        match self.run_queues {
            None => {
                let program = self.gen.next_program();
                let plan = plan_accesses(&program, db, self.noise, &mut self.plan_rng);
                vec![Admitted {
                    program,
                    plan,
                    started: std::time::Instant::now(),
                }]
            }
            Some(_) => self.next_run_batched(db, max),
        }
    }

    /// Re-plan after an OLLP mismatch with the corrected (noise-free)
    /// estimate, continuing the same planning RNG stream the seed used.
    pub fn replan(&mut self, program: &Program, db: &Database) -> Plan {
        plan_accesses(program, db, 0, &mut self.plan_rng)
    }

    /// Transactions planned and queued but not yet admitted (0 for
    /// `Fifo`). They hold no locks and no slots; at shutdown they are
    /// simply dropped.
    pub fn queued(&self) -> usize {
        self.run_queues.as_ref().map_or(0, |rq| rq.queued)
    }

    fn next_run_batched(&mut self, db: &Database, max: usize) -> Vec<Admitted> {
        if self.queued() == 0 {
            self.refill(db);
        }
        let rq = self.run_queues.as_mut().expect("batched policy");
        // Drain the current class back-to-back up to its batch budget,
        // then rotate. `queued > 0` guarantees the rotation terminates.
        loop {
            if rq.budget > 0 && !rq.queues[rq.cursor].is_empty() {
                let take = rq.budget.min(max).min(rq.queues[rq.cursor].len());
                let run: Vec<Admitted> = rq.queues[rq.cursor].drain(..take).collect();
                rq.budget -= take;
                rq.queued -= take;
                return run;
            }
            rq.cursor = (rq.cursor + 1) % rq.queues.len();
            rq.budget = rq.batch;
        }
    }

    /// Generate and plan one refill window (`classes × batch`
    /// transactions) and bucket it into the class queues. Planning happens
    /// here, once — the plans ride the queues to execution.
    fn refill(&mut self, db: &Database) {
        let rq = self.run_queues.as_mut().expect("batched policy");
        let window = rq.queues.len() * rq.batch;
        for _ in 0..window {
            let program = self.gen.next_program();
            let plan = plan_accesses(&program, db, self.noise, &mut self.plan_rng);
            for &(k, _) in plan.accesses.entries() {
                rq.sketch.observe(k);
            }
            let class = conflict_class(&program, &plan, &rq.sketch, rq.queues.len());
            rq.queues[class].push_back(Admitted {
                program,
                plan,
                started: std::time::Instant::now(),
            });
        }
        rq.queued = window;
    }
}

/// The conflict class of a planned transaction: the **hottest key of the
/// planned footprint**, hashed onto the class space. Hotness comes from
/// the admitter's frequency sketch over recent footprints, so positional
/// skew (hot/cold generators put hot keys first) and popularity skew
/// (scrambled Zipf scatters them anywhere) both classify correctly; ties
/// — e.g. a cold sketch right after startup — fall back to the
/// pre-admission hint ([`Program::hot_key_hint`]).
fn conflict_class(program: &Program, plan: &Plan, sketch: &HotSketch, classes: usize) -> usize {
    let hint = program.hot_key_hint();
    let entries = plan.accesses.entries();
    let key = match entries.first() {
        None => hint.unwrap_or(0),
        Some(&(first, _)) => {
            let mut best = first;
            let mut best_h = sketch.hotness(first);
            for &(k, _) in &entries[1..] {
                let h = sketch.hotness(k);
                if h > best_h || (h == best_h && Some(k) == hint) {
                    best = k;
                    best_h = h;
                }
            }
            best
        }
    };
    (fx_hash_u64(key) % classes as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_storage::Table;
    use orthrus_workload::{MicroSpec, Spec};

    fn flat(n: usize) -> Database {
        Database::Flat(Table::new(n, 64))
    }

    fn keys_of(p: &Program) -> Vec<u64> {
        match p {
            Program::ReadOnly { keys } | Program::Rmw { keys } => keys.clone(),
            _ => panic!("micro workloads yield key programs"),
        }
    }

    /// Sorted multiset fingerprint of a window of programs.
    fn fingerprint(ps: &[Program]) -> Vec<Vec<u64>> {
        let mut v: Vec<Vec<u64>> = ps.iter().map(keys_of).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn fifo_admits_in_generator_order() {
        let spec = MicroSpec::uniform(256, 4, false);
        let db = flat(256);
        let mut admit = Admitter::new(
            &AdmissionPolicy::Fifo,
            Spec::Micro(spec.clone()).generator(9, 1),
            9,
            1,
            0,
        );
        let mut reference = spec.generator(9, 1);
        for _ in 0..64 {
            let a = admit.next(&db);
            assert_eq!(a.program, reference.next_program());
            assert_eq!(admit.queued(), 0, "fifo never queues ahead");
        }
    }

    #[test]
    fn conflict_batch_windows_conserve_the_generator_stream() {
        // Every refill window must be admitted as a permutation of the
        // corresponding generation window: nothing is dropped, nothing
        // starves, even with a hot class that dominates the stream.
        let spec = MicroSpec::hot_cold(1024, 4, 2, 4, false);
        let policy = AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 8,
        };
        let db = flat(1024);
        let mut admit = Admitter::new(&policy, Spec::Micro(spec.clone()).generator(7, 0), 7, 0, 0);
        let mut reference = spec.generator(7, 0);
        let window = 4 * 8;
        let mut reordered_somewhere = false;
        for _ in 0..4 {
            let admitted: Vec<Program> = (0..window).map(|_| admit.next(&db).program).collect();
            let generated: Vec<Program> = (0..window).map(|_| reference.next_program()).collect();
            reordered_somewhere |= admitted != generated;
            assert_eq!(
                fingerprint(&admitted),
                fingerprint(&generated),
                "window must be a permutation of the generator stream"
            );
            assert_eq!(admit.queued(), 0, "window fully drained before refill");
        }
        assert!(reordered_somewhere, "class batching must actually reorder");
    }

    #[test]
    fn conflict_batch_drains_back_to_back_runs() {
        // With 4 distinct hot keys leading each transaction, admissions
        // come out in same-class runs (bounded by the batch cap), not in
        // generator interleaving.
        let spec = MicroSpec::hot_cold(1024, 4, 1, 3, false);
        let policy = AdmissionPolicy::ConflictBatch {
            classes: 8,
            batch: 4,
        };
        let db = flat(1024);
        let mut admit = Admitter::new(&policy, Spec::Micro(spec.clone()).generator(3, 0), 3, 0, 0);
        let window = 8 * 4;
        // A fresh (all-zero) sketch classifies by the pre-admission hint,
        // which for hot/cold programs is the same hot key the admitter's
        // evolving sketch converges on.
        let fresh = HotSketch::new();
        let classes: Vec<usize> = (0..window)
            .map(|_| {
                let a = admit.next(&db);
                conflict_class(&a.program, &a.plan, &fresh, 8)
            })
            .collect();
        let mut runs = Vec::new();
        let mut len = 1;
        for w in classes.windows(2) {
            if w[0] == w[1] {
                len += 1;
            } else {
                runs.push(len);
                len = 1;
            }
        }
        runs.push(len);
        let avg = window as f64 / runs.len() as f64;
        assert!(
            avg > 1.5,
            "same-class admissions must clump: runs {runs:?} (avg {avg:.2})"
        );
    }

    #[test]
    fn saturated_single_class_never_livelocks() {
        // Every transaction is the same single hot key: one class holds
        // the whole window, and the rotation must keep re-granting its
        // batch budget rather than spinning on empty siblings.
        let spec = MicroSpec::hot_cold(64, 1, 1, 1, false);
        let policy = AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 2,
        };
        let db = flat(64);
        let mut admit = Admitter::new(&policy, Spec::Micro(spec).generator(1, 0), 1, 0, 0);
        for _ in 0..64 {
            let a = admit.next(&db);
            assert_eq!(keys_of(&a.program), vec![0], "the one hot key");
        }
    }

    #[test]
    fn replan_uses_corrected_estimates() {
        // replan must not re-apply admission noise (noise only perturbs
        // TPC-C reconnaissance, but the contract is policy-independent).
        let db = flat(128);
        let mut admit = Admitter::new(
            &AdmissionPolicy::Fifo,
            Spec::Micro(MicroSpec::uniform(128, 2, false)).generator(2, 0),
            2,
            0,
            50,
        );
        let a = admit.next(&db);
        let replanned = admit.replan(&a.program, &db);
        assert_eq!(a.plan.accesses, replanned.accesses);
    }

    #[test]
    fn policy_parsing_round_trips() {
        assert_eq!("fifo".parse(), Ok(AdmissionPolicy::Fifo));
        assert_eq!("batch".parse(), Ok(AdmissionPolicy::conflict_batch()));
        assert_eq!(
            "batch:4:32".parse(),
            Ok(AdmissionPolicy::ConflictBatch {
                classes: 4,
                batch: 32
            })
        );
        assert_eq!(
            "conflict-batch".parse(),
            Ok(AdmissionPolicy::conflict_batch())
        );
        for bad in ["", "lifo", "batch:0:4", "batch:4:0", "batch:x:y", "batch:1"] {
            assert!(bad.parse::<AdmissionPolicy>().is_err(), "{bad:?}");
        }
        for p in [
            AdmissionPolicy::Fifo,
            AdmissionPolicy::conflict_batch(),
            AdmissionPolicy::ConflictBatch {
                classes: 3,
                batch: 7,
            },
        ] {
            assert_eq!(p.to_string().parse(), Ok(p.clone()));
        }
    }
}
