//! Admission: which transaction enters the engine next, and with what
//! plan.
//!
//! The seed inlined admission in the execution thread — generate a
//! program, plan its accesses, occupy an in-flight slot — which admits
//! hot-key transactions blindly: under high skew their waiters pile up in
//! CC queues, burning fabric round trips on lock requests that can only
//! serialize anyway. Prasaad et al. ("Improving High Contention OLTP
//! Performance via Transaction Scheduling") show that batching
//! transactions by *conflict class* before admission recovers much of
//! that loss.
//!
//! This module lifts admission into a pluggable policy layer:
//!
//! - [`AdmissionPolicy::Fifo`] reproduces the seed's admission order
//!   exactly (same generator stream, same planning RNG stream, one
//!   generate+plan per admission, runs of one) — proptest-pinned in
//!   `crate::proptests`.
//! - [`AdmissionPolicy::ConflictBatch`] plans each transaction **once at
//!   admission** and reuses the plan downstream, derives its conflict
//!   class from the **hottest key of the planned footprint** (a decaying
//!   frequency sketch over recent footprints; ties fall back to the
//!   pre-admission [`Program::hot_key_hint`]), and drains per-class run
//!   queues back-to-back — up to `batch` per class, round-robin across
//!   classes. A drained run is handed to the execution thread as one
//!   unit, which **serializes it locally**: the union of the run's
//!   footprints is acquired in a single fused round, the run executes
//!   back-to-back under it, and one release round frees it. The hot-key
//!   convoy that cost FIFO admission one fabric round trip per waiting
//!   transaction costs one per *run* instead.
//!
//! The tradeoff is deliberate and visible in ablation A6
//! (`abl06_admission`): under low skew the fused unions hold more locks
//! for longer than independent acquisitions and FIFO wins; past the
//! contention crossover the amortized round trips dominate and
//! `ConflictBatch` wins, increasingly with skew.
//!
//! Starvation-freedom of `ConflictBatch` is structural: the admitter only
//! refills its run queues when **every** class queue is empty, and the
//! drain rotates round-robin with a per-class cap, so each refill window
//! is admitted in full — a saturated hot class can delay a cold class by
//! at most one window, never forever.
//!
//! ## Adaptive admission ([`AdmissionPolicy::Adaptive`])
//!
//! Ablation A6 shows a clean crossover: FIFO wins at low skew,
//! `ConflictBatch` past it. Which side of the crossover a deployment sits
//! on is a property of the *observed* workload, so the third policy picks
//! online: it wraps both static policies and switches between them from a
//! contention signal collected on the hot path — every lock grant carries
//! the number of grant-deferral events (locks that had to wait) the
//! acquisition experienced, and the execution thread folds those into the
//! admitter's per-epoch counters ([`Admitter::note_lock_waits`]). Every
//! `epoch` admissions, [`AdaptiveController`] compares the epoch's
//! deferrals-per-100-admissions against a threshold with hysteresis
//! (promote to batching after `hysteresis` consecutive hot epochs, demote
//! after as many cold ones, hold inside the band between the promote and
//! demote thresholds) and, while batching, walks the per-class batch
//! depth up and down the shared power-of-two ladder ([`crate::ladder`])
//! the way the harness's `tune_flush_threshold` climbs it offline.
//!
//! Conservation across a live switch is structural: a demotion to FIFO
//! never drops the transactions still parked in class queues — they drain
//! first, one per admission in the same round-robin order (so the
//! per-class starvation cap keeps holding across the switch), and only
//! then does the admitter fall back to generate-one-admit-one.
//!
//! **Clocks.** The frequency sketch's decay and the adaptive epoch share
//! one boundary discipline: decay ticks only *between* admission windows
//! — at a `ConflictBatch` refill boundary, or at an `Adaptive` epoch
//! close — never while a window is being observed and classified, so
//! every refill window is classified against a single sketch state and a
//! drained run can never straddle a decay.

use std::collections::VecDeque;

use orthrus_common::{fx_hash_u64, Key, XorShift64};
use orthrus_txn::{plan_accesses, Database, Plan, Program};

use crate::ladder;
use crate::source::{Ticket, TxnSource};

/// Default conflict-class count for [`AdmissionPolicy::ConflictBatch`]:
/// enough classes that distinct hot keys rarely collide, few enough that
/// the per-class batches stay deep at a refill window of
/// `classes × batch`.
pub const DEFAULT_CONFLICT_CLASSES: usize = 8;

/// Default per-class drain batch for [`AdmissionPolicy::ConflictBatch`]:
/// matched to the default in-flight cap so one class's run can fuse into
/// a single full-depth acquisition (runs are additionally clipped to the
/// execution thread's in-flight headroom at admission time). Deeper
/// batches amortize more round trips per fused run under contention.
pub const DEFAULT_CLASS_BATCH: usize = 16;

/// Default promote threshold for [`AdmissionPolicy::Adaptive`], in
/// grant-deferral events per 100 admissions. Calibrated on the A6/A7
/// sweeps under FIFO admission: scrambled-Zipf θ = 0.3 runs at ≈35/100
/// (below even the demote band at half this), θ = 0.6 — the crossover —
/// at ≈100, θ = 0.9 at ≈350. Sitting between the θ = 0.3 and θ = 0.6
/// rates keeps the low-skew side on FIFO and promotes from the crossover
/// up.
pub const DEFAULT_ADAPTIVE_THRESHOLD_PCT: u32 = 80;

/// Default hysteresis depth for [`AdmissionPolicy::Adaptive`]: how many
/// consecutive epochs must sit past the promote (or below the demote)
/// threshold before the policy switches.
pub const DEFAULT_ADAPTIVE_HYSTERESIS: u32 = 2;

/// Default adaptive epoch length, in admissions per execution thread.
/// Long enough that a deferrals-per-100-admissions rate is statistically
/// meaningful, short enough to react within a fraction of a measurement
/// window.
pub const DEFAULT_ADAPTIVE_EPOCH: u32 = 128;

/// The batch-depth ladder's bottom rung while adaptively batching. Depth
/// 1 fuses nothing (it is FIFO with extra queues), so the controller
/// enters batching at 2 and climbs from there.
pub const ADAPTIVE_MIN_BATCH: usize = 2;

/// How the engine admits transactions ([`crate::config::OrthrusConfig`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// The seed's admission order: generate and plan one transaction per
    /// admission, in generator order.
    Fifo,
    /// Conflict-class batched admission (Prasaad et al.): plan at
    /// admission, bucket into `classes` run queues by the hottest
    /// footprint key, drain up to `batch` same-class transactions
    /// back-to-back before rotating to the next class. Drained runs are
    /// serialized locally by the execution thread under one fused lock
    /// acquisition.
    ConflictBatch {
        /// Number of conflict classes (run queues); must be ≥ 1.
        classes: usize,
        /// Back-to-back admissions per class before rotating; must be ≥ 1.
        batch: usize,
    },
    /// Conflict-driven online policy switching: admit FIFO while the
    /// observed contention is low, promote to conflict-class batching (and
    /// walk its batch depth up the power-of-two ladder) while it is high.
    /// The contention signal is the per-epoch count of grant-deferral
    /// events reported back with every lock grant; switching is governed
    /// by [`AdaptiveController`]'s hysteresis.
    Adaptive {
        /// Conflict classes used while batching; must be ≥ 1.
        classes: usize,
        /// Ceiling of the batch-depth ladder; must be ≥ 1.
        max_batch: usize,
        /// Promote when an epoch sees at least this many grant-deferral
        /// events per 100 admissions (demote below half of it); must be
        /// ≥ 1.
        threshold_pct: u32,
        /// Consecutive epochs past a threshold before switching; must be
        /// ≥ 1.
        hysteresis: u32,
        /// Epoch length in admissions; must be ≥ 2 (a 1-admission epoch
        /// makes the rate a 0-or-everything coin flip).
        epoch: u32,
    },
}

impl AdmissionPolicy {
    /// `ConflictBatch` with the default class/batch shape.
    pub fn conflict_batch() -> Self {
        AdmissionPolicy::ConflictBatch {
            classes: DEFAULT_CONFLICT_CLASSES,
            batch: DEFAULT_CLASS_BATCH,
        }
    }

    /// `Adaptive` with the default thresholds and shape.
    pub fn adaptive() -> Self {
        AdmissionPolicy::Adaptive {
            classes: DEFAULT_CONFLICT_CLASSES,
            max_batch: DEFAULT_CLASS_BATCH,
            threshold_pct: DEFAULT_ADAPTIVE_THRESHOLD_PCT,
            hysteresis: DEFAULT_ADAPTIVE_HYSTERESIS,
            epoch: DEFAULT_ADAPTIVE_EPOCH,
        }
    }

    /// The most transactions this policy can hold *planned and queued*
    /// inside the admitter (outside any ring, before occupying in-flight
    /// slots): one refill window for the batched policies, zero for
    /// `Fifo`. Service mode sizes its completion rings from this bound —
    /// everything accepted can sit in the ingest ring, the admission
    /// queues, or an in-flight slot, and all of it may complete before a
    /// client drains.
    pub fn max_queued_window(&self) -> usize {
        match *self {
            AdmissionPolicy::Fifo => 0,
            AdmissionPolicy::ConflictBatch { classes, batch } => classes * batch,
            AdmissionPolicy::Adaptive {
                classes, max_batch, ..
            } => classes * max_batch,
        }
    }

    /// Reject degenerate shapes. Called by `OrthrusConfig::validate` at
    /// engine construction and by the `FromStr` env parser, so both paths
    /// refuse the same configurations.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            AdmissionPolicy::Fifo => Ok(()),
            AdmissionPolicy::ConflictBatch { classes, batch } => {
                if *classes == 0 || *batch == 0 {
                    return Err(format!(
                        "ConflictBatch needs classes ≥ 1 and batch ≥ 1, got {classes}/{batch}"
                    ));
                }
                Ok(())
            }
            AdmissionPolicy::Adaptive {
                classes,
                max_batch,
                threshold_pct,
                hysteresis,
                epoch,
            } => {
                if *classes == 0 || *max_batch == 0 {
                    return Err(format!(
                        "Adaptive needs classes ≥ 1 and max_batch ≥ 1, got {classes}/{max_batch}"
                    ));
                }
                if *threshold_pct == 0 {
                    return Err(
                        "Adaptive threshold_pct must be ≥ 1: a zero threshold marks every \
                         epoch hot and the policy degenerates to ConflictBatch"
                            .into(),
                    );
                }
                if *hysteresis == 0 {
                    return Err("Adaptive hysteresis must be ≥ 1: zero would switch before \
                         observing any epoch"
                        .into());
                }
                if *epoch < 2 {
                    return Err(format!(
                        "Adaptive epoch length must be ≥ 2, got {epoch}: a 1-admission \
                         epoch makes the conflict rate a 0-or-everything coin flip and the \
                         controller flaps on it"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// The hysteresis state machine behind [`AdmissionPolicy::Adaptive`]: a
/// **pure, deterministic** function of the epoch-counter sequence fed to
/// [`Self::observe_epoch`] — no clocks, no randomness — so a fixed
/// conflict-signal trace always produces the same policy-switch schedule
/// (proptest-pinned in `crate::proptests`).
///
/// Semantics per epoch, with `rate` = deferrals per 100 admissions:
///
/// - **hot** (`rate ≥ threshold_pct`): while FIFO, grow the promote
///   streak — `hysteresis` consecutive hot epochs promote to batching at
///   the ladder's bottom rung. While batching, step the batch depth up
///   the power-of-two ladder ([`ladder::step_up`]).
/// - **cold** (`rate < threshold_pct.div_ceil(2)`): while batching, step
///   the depth down and grow the demote streak — `hysteresis` consecutive
///   cold epochs demote to FIFO. While FIFO, nothing to do.
/// - **in the band between**: reset the active streak and hold — the
///   hysteresis band is what keeps a rate oscillating *at* the promote
///   threshold from flapping the policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveController {
    threshold_pct: u32,
    demote_pct: u32,
    hysteresis: u32,
    min_batch: usize,
    max_batch: usize,
    batching: bool,
    batch: usize,
    streak: u32,
    switches: u64,
}

impl AdaptiveController {
    /// Build a controller; parameters as in [`AdmissionPolicy::Adaptive`]
    /// (already validated by `OrthrusConfig::validate`). Starts in FIFO.
    pub fn new(threshold_pct: u32, hysteresis: u32, max_batch: usize) -> Self {
        assert!(
            threshold_pct >= 1 && hysteresis >= 1 && max_batch >= 1,
            "validated by OrthrusConfig"
        );
        let min_batch = ADAPTIVE_MIN_BATCH.min(max_batch);
        AdaptiveController {
            threshold_pct,
            demote_pct: threshold_pct.div_ceil(2),
            hysteresis,
            min_batch,
            max_batch,
            batching: false,
            batch: min_batch,
            streak: 0,
            switches: 0,
        }
    }

    /// Close one epoch: feed its counters, get back the (batching?, batch
    /// depth) to use for the next epoch.
    pub fn observe_epoch(&mut self, deferrals: u64, admitted: u64) -> (bool, usize) {
        debug_assert!(admitted > 0, "epochs close after ≥ 1 admission");
        let rate = deferrals.saturating_mul(100) / admitted.max(1);
        let hot = rate >= self.threshold_pct as u64;
        let cold = rate < self.demote_pct as u64;
        if self.batching {
            if hot {
                self.batch = ladder::step_up(self.batch, self.max_batch);
                self.streak = 0;
            } else if cold {
                self.batch = ladder::step_down(self.batch, self.min_batch);
                self.streak += 1;
                if self.streak >= self.hysteresis {
                    self.batching = false;
                    self.batch = self.min_batch;
                    self.streak = 0;
                    self.switches += 1;
                }
            } else {
                self.streak = 0;
            }
        } else if hot {
            self.streak += 1;
            if self.streak >= self.hysteresis {
                self.batching = true;
                self.batch = self.min_batch;
                self.streak = 0;
                self.switches += 1;
            }
        } else {
            self.streak = 0;
        }
        (self.batching, self.batch)
    }

    /// Whether the controller currently batches.
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// The current batch-depth ladder rung.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Policy switches so far (each direction counts one).
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionPolicy::Fifo => write!(f, "fifo"),
            AdmissionPolicy::ConflictBatch { classes, batch } => {
                write!(f, "batch:{classes}:{batch}")
            }
            AdmissionPolicy::Adaptive {
                classes,
                max_batch,
                threshold_pct,
                hysteresis,
                epoch,
            } => {
                write!(
                    f,
                    "adaptive:{threshold_pct}:{hysteresis}:{epoch}:{classes}:{max_batch}"
                )
            }
        }
    }
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = String;

    /// Parse the harness's `ORTHRUS_ADMISSION` syntax: `fifo`, `batch`
    /// (default shape), `batch:<classes>:<batch>`, `adaptive` (default
    /// thresholds), `adaptive:<threshold>:<k>:<epoch>`, or the full
    /// `adaptive:<threshold>:<k>:<epoch>:<classes>:<max_batch>`.
    fn from_str(s: &str) -> Result<Self, String> {
        fn num<T: std::str::FromStr>(what: &str, v: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("bad {what} {v:?}"))
        }
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["fifo"] => Ok(AdmissionPolicy::Fifo),
            ["batch" | "conflict-batch"] => Ok(AdmissionPolicy::conflict_batch()),
            ["batch" | "conflict-batch", c, b] => {
                let classes: usize = num("class count", c)?;
                let batch: usize = num("batch size", b)?;
                if classes == 0 || batch == 0 {
                    return Err(format!("classes and batch must be ≥ 1, got {s:?}"));
                }
                Ok(AdmissionPolicy::ConflictBatch { classes, batch })
            }
            ["adaptive"] => Ok(AdmissionPolicy::adaptive()),
            ["adaptive", t, k, e] | ["adaptive", t, k, e, _, _] => {
                let (classes, max_batch) = match parts.as_slice() {
                    ["adaptive", _, _, _, c, b] => (num("class count", c)?, num("max batch", b)?),
                    _ => (DEFAULT_CONFLICT_CLASSES, DEFAULT_CLASS_BATCH),
                };
                let policy = AdmissionPolicy::Adaptive {
                    classes,
                    max_batch,
                    threshold_pct: num("threshold", t)?,
                    hysteresis: num("hysteresis depth", k)?,
                    epoch: num("epoch length", e)?,
                };
                // Reuse the one validator (OrthrusConfig::validate defers
                // to it too) so env parsing rejects what the engine would.
                policy.validate().map(|()| policy)
            }
            _ => Err(format!(
                "unknown admission policy {s:?}; expected fifo | batch | \
                 batch:<classes>:<batch> | adaptive | adaptive:<threshold>:<k>:<epoch>\
                 [:<classes>:<max_batch>]"
            )),
        }
    }
}

/// One admitted transaction: the program plus the plan produced at
/// admission. The plan travels with the transaction — lock-plan
/// construction and execution reuse it instead of re-planning.
pub struct Admitted {
    pub program: Program,
    pub plan: Plan,
    /// The client ticket riding this transaction (`None` for synthetic
    /// work). Completed — once, exactly — when the transaction commits,
    /// surviving OLLP retries.
    pub ticket: Option<Ticket>,
    /// Latency clock start: client submission time for sourced work,
    /// generation time for synthetic work. Commit latency is measured
    /// from here, so time spent queued in an ingest ring or a
    /// conflict-class run queue counts toward latency
    /// (FIFO-vs-ConflictBatch latency comparisons stay honest).
    pub started: std::time::Instant,
}

/// A tiny decaying frequency sketch over lock-space keys: which keys have
/// been hot in the recently planned footprints. Lets the classifier pick
/// the *hottest* key of a footprint even when the workload's skew is not
/// positional (scrambled-Zipfian popularity scatters hot keys anywhere in
/// the key space). Counters are hashed (no key set is materialized) and
/// halve periodically so the sketch tracks workload drift.
///
/// Decay is **boundary-clocked**: [`Self::observe`] only counts, and
/// [`Self::decay_tick`] halves the counters when due. The admitter calls
/// the tick exclusively at window boundaries — a `ConflictBatch` refill,
/// or an `Adaptive` epoch close — so a refill window is always observed
/// and classified against one sketch state, and a decay can never land
/// mid-classification of a drained run.
struct HotSketch {
    counts: Box<[u32; Self::LEN]>,
    observed: u32,
}

impl HotSketch {
    /// Counter-array length (power of two; collisions just merge classes,
    /// which the `% classes` projection does anyway).
    const LEN: usize = 1024;
    /// Halve every counter at the first window boundary after this many
    /// observations.
    const DECAY_EVERY: u32 = 8192;

    fn new() -> Self {
        HotSketch {
            counts: Box::new([0; Self::LEN]),
            observed: 0,
        }
    }

    #[inline]
    fn slot(key: Key) -> usize {
        fx_hash_u64(key) as usize & (Self::LEN - 1)
    }

    #[inline]
    fn observe(&mut self, key: Key) {
        let c = &mut self.counts[Self::slot(key)];
        *c = c.saturating_add(1);
        self.observed = self.observed.saturating_add(1);
    }

    /// Halve every counter if enough observations have accumulated.
    /// Call only at window/epoch boundaries (see the type docs).
    fn decay_tick(&mut self) {
        if self.observed >= Self::DECAY_EVERY {
            self.observed = 0;
            for c in self.counts.iter_mut() {
                *c >>= 1;
            }
        }
    }

    #[inline]
    fn hotness(&self, key: Key) -> u32 {
        self.counts[Self::slot(key)]
    }
}

/// Per-class run queues for `ConflictBatch`.
struct RunQueues {
    queues: Vec<VecDeque<Admitted>>,
    /// Class currently draining.
    cursor: usize,
    /// Admissions left in the current class's back-to-back batch.
    budget: usize,
    /// Per-class drain cap.
    batch: usize,
    /// Total queued transactions across all classes.
    queued: usize,
    /// Which keys have been hot recently (feeds classification).
    sketch: HotSketch,
}

/// Per-thread adaptive state: the controller plus the epoch counters the
/// execution thread feeds ([`Admitter::note_lock_waits`]).
struct AdaptiveState {
    ctl: AdaptiveController,
    /// Epoch length in admissions.
    epoch: u64,
    admitted_in_epoch: u64,
    waits_in_epoch: u64,
    /// Whether admissions currently batch (mirrors `ctl.batching()`; the
    /// queued backlog may still be draining after a demotion).
    batching: bool,
}

/// One execution thread's admission state: the transaction source
/// (synthetic generator or client ingest ring — see [`crate::source`]),
/// the planning RNG (the OLLP reconnaissance noise stream), and any
/// policy queues. Owned by the thread — admission is thread-local,
/// exactly like the seed's inlined path. Generic over the source so the
/// hot admission path monomorphizes (no per-transaction dispatch).
pub struct Admitter<S: TxnSource> {
    source: S,
    plan_rng: XorShift64,
    /// OLLP estimate noise applied to admission-time planning; retries
    /// always re-plan with the corrected (noise-free) estimate.
    noise: u32,
    run_queues: Option<RunQueues>,
    adaptive: Option<AdaptiveState>,
}

impl<S: TxnSource> Admitter<S> {
    /// Build the admission state for execution thread `exec_id`.
    ///
    /// The planning RNG is seeded exactly as the seed's `ExecThread` was,
    /// so `Fifo` admission over a [`crate::source::SyntheticSource`]
    /// reproduces the seed's program and plan streams bit for bit.
    pub fn new(policy: &AdmissionPolicy, source: S, seed: u64, exec_id: u16, noise: u32) -> Self {
        let mut adaptive = None;
        let run_queues = match *policy {
            AdmissionPolicy::Fifo => None,
            AdmissionPolicy::ConflictBatch { classes, batch } => {
                assert!(classes >= 1 && batch >= 1, "validated by OrthrusConfig");
                Some(RunQueues {
                    queues: (0..classes).map(|_| VecDeque::new()).collect(),
                    cursor: 0,
                    budget: batch,
                    batch,
                    queued: 0,
                    sketch: HotSketch::new(),
                })
            }
            AdmissionPolicy::Adaptive {
                classes,
                max_batch,
                threshold_pct,
                hysteresis,
                epoch,
            } => {
                assert!(classes >= 1 && epoch >= 2, "validated by OrthrusConfig");
                let ctl = AdaptiveController::new(threshold_pct, hysteresis, max_batch);
                let batch = ctl.batch();
                adaptive = Some(AdaptiveState {
                    ctl,
                    epoch: epoch as u64,
                    admitted_in_epoch: 0,
                    waits_in_epoch: 0,
                    batching: false,
                });
                Some(RunQueues {
                    queues: (0..classes).map(|_| VecDeque::new()).collect(),
                    cursor: 0,
                    budget: batch,
                    batch,
                    queued: 0,
                    sketch: HotSketch::new(),
                })
            }
        };
        Admitter {
            source,
            plan_rng: XorShift64::for_thread(seed ^ 0x6578_6563, exec_id as usize),
            noise,
            run_queues,
            adaptive,
        }
    }

    /// Admit the next transaction (pulling and planning as the policy
    /// dictates). `None` when the source is currently dry (a client
    /// ingest ring with nothing submitted); synthetic sources always
    /// admit.
    pub fn next(&mut self, db: &Database) -> Option<Admitted> {
        self.next_run(db, 1).pop()
    }

    /// Admit the next *run*: up to `max` same-class transactions drained
    /// back-to-back, meant to be serialized locally by the execution
    /// thread under one fused lock acquisition. `Fifo` always returns a
    /// single transaction (the seed admitted one acquisition chain per
    /// transaction); `ConflictBatch` returns the current class's next
    /// `min(max, batch budget)` queued transactions. `Adaptive` behaves
    /// like whichever policy its controller currently selects, closing an
    /// epoch first if one is due — policy switches only ever land on run
    /// boundaries. **Empty** exactly when the source has nothing to
    /// admit (client ring dry) and no backlog is queued.
    pub fn next_run(&mut self, db: &Database, max: usize) -> Vec<Admitted> {
        debug_assert!(max >= 1);
        self.maybe_close_epoch();
        let batching = match (&self.run_queues, &self.adaptive) {
            (None, _) => None,
            (Some(_), None) => Some(true),
            (Some(_), Some(st)) => Some(st.batching),
        };
        let run = match batching {
            None => self.next_single(db, false),
            Some(true) => self.next_run_batched(db, max),
            Some(false) => self.next_run_fifo(db),
        };
        if let Some(st) = &mut self.adaptive {
            st.admitted_in_epoch += run.len() as u64;
        }
        run
    }

    /// Fold grant-deferral events reported with a lock grant into the
    /// current adaptive epoch's conflict counter. No-op for the static
    /// policies.
    #[inline]
    pub fn note_lock_waits(&mut self, waiters: u32) {
        if let Some(st) = &mut self.adaptive {
            st.waits_in_epoch += waiters as u64;
        }
    }

    /// Whether adaptive admission is currently batching (always `true`
    /// for `ConflictBatch`, `false` for `Fifo`). Diagnostics/tests.
    pub fn batching(&self) -> bool {
        match (&self.run_queues, &self.adaptive) {
            (None, _) => false,
            (Some(_), None) => true,
            (_, Some(st)) => st.batching,
        }
    }

    /// Adaptive policy switches so far (0 for the static policies).
    pub fn switches(&self) -> u64 {
        self.adaptive.as_ref().map_or(0, |st| st.ctl.switches())
    }

    /// Close the adaptive epoch if it is due: feed the counters to the
    /// controller, apply its (mode, batch-depth) verdict, and tick the
    /// sketch decay — the epoch close *is* the adaptive sketch clock (see
    /// the module docs on clocks).
    fn maybe_close_epoch(&mut self) {
        let Some(st) = &mut self.adaptive else { return };
        if st.admitted_in_epoch < st.epoch {
            return;
        }
        let (batching, batch) = st
            .ctl
            .observe_epoch(st.waits_in_epoch, st.admitted_in_epoch);
        st.admitted_in_epoch = 0;
        st.waits_in_epoch = 0;
        st.batching = batching;
        let rq = self.run_queues.as_mut().expect("adaptive has queues");
        rq.sketch.decay_tick();
        rq.batch = batch;
        rq.budget = rq.budget.min(batch);
    }

    /// The seed's admission step: pull one, plan one. With `observe`
    /// (adaptive FIFO mode) the planned footprint still feeds the
    /// frequency sketch, so a later promotion classifies with a warm
    /// sketch instead of falling back to the hint. Empty when the source
    /// is dry.
    fn next_single(&mut self, db: &Database, observe: bool) -> Vec<Admitted> {
        let Admitter {
            source,
            plan_rng,
            noise,
            run_queues,
            ..
        } = self;
        let Some(sourced) = source.pull() else {
            return Vec::new();
        };
        let plan = plan_accesses(&sourced.program, db, *noise, plan_rng);
        if observe {
            let rq = run_queues.as_mut().expect("adaptive has queues");
            for &(k, _) in plan.accesses.entries() {
                rq.sketch.observe(k);
            }
        }
        vec![Admitted {
            program: sourced.program,
            plan,
            ticket: sourced.ticket,
            started: sourced.started,
        }]
    }

    /// Adaptive FIFO mode: first drain any backlog left queued by a
    /// demotion — one transaction per admission, same round-robin
    /// rotation, so nothing is lost and the per-class cap keeps bounding
    /// wait across the switch — then admit in the seed's
    /// generate-one-admit-one order.
    fn next_run_fifo(&mut self, db: &Database) -> Vec<Admitted> {
        if self.queued() > 0 {
            self.next_run_batched(db, 1)
        } else {
            self.next_single(db, true)
        }
    }

    /// Re-plan after an OLLP mismatch with the corrected (noise-free)
    /// estimate, continuing the same planning RNG stream the seed used.
    pub fn replan(&mut self, program: &Program, db: &Database) -> Plan {
        plan_accesses(program, db, 0, &mut self.plan_rng)
    }

    /// Transactions planned and queued but not yet admitted (always 0 for
    /// `Fifo`; for `Adaptive` a demotion's backlog counts until drained).
    /// They hold no locks and no slots. At shutdown, synthetic backlog is
    /// simply dropped; ticketed backlog is drained first (see
    /// [`Self::drain_on_stop`]).
    pub fn queued(&self) -> usize {
        self.run_queues.as_ref().map_or(0, |rq| rq.queued)
    }

    /// Whether undelivered work exists: queued transactions or source
    /// input. Drives the shutdown drain for client sources.
    pub fn has_backlog(&self) -> bool {
        self.queued() > 0 || self.source.has_pending()
    }

    /// The source's shutdown contract (see [`TxnSource::drain_on_stop`]):
    /// `true` means the execution thread must keep admitting after a stop
    /// request until [`Self::has_backlog`] clears — every accepted client
    /// ticket is owed a completion.
    pub fn drain_on_stop(&self) -> bool {
        self.source.drain_on_stop()
    }

    fn next_run_batched(&mut self, db: &Database, max: usize) -> Vec<Admitted> {
        if self.queued() == 0 {
            // Plain ConflictBatch decays on its window clock: the refill
            // boundary. Adaptive ticks at epoch closes instead (one clock,
            // see `maybe_close_epoch`). Either way, never mid-window.
            if self.adaptive.is_none() {
                let rq = self.run_queues.as_mut().expect("batched policy");
                rq.sketch.decay_tick();
            }
            self.refill(db);
            if self.queued() == 0 {
                // Source dry (client ring empty): nothing to admit, and
                // the rotation below must not spin on empty queues.
                return Vec::new();
            }
        }
        let rq = self.run_queues.as_mut().expect("batched policy");
        // Drain the current class back-to-back up to its batch budget,
        // then rotate. `queued > 0` guarantees the rotation terminates.
        loop {
            if rq.budget > 0 && !rq.queues[rq.cursor].is_empty() {
                let take = rq.budget.min(max).min(rq.queues[rq.cursor].len());
                let run: Vec<Admitted> = rq.queues[rq.cursor].drain(..take).collect();
                rq.budget -= take;
                rq.queued -= take;
                return run;
            }
            rq.cursor = (rq.cursor + 1) % rq.queues.len();
            rq.budget = rq.batch;
        }
    }

    /// Pull and plan one refill window (up to `classes × batch`
    /// transactions — fewer if the source runs dry mid-window) and bucket
    /// it into the class queues. Planning happens here, once — the plans
    /// ride the queues to execution.
    fn refill(&mut self, db: &Database) {
        let Admitter {
            source,
            plan_rng,
            noise,
            run_queues,
            ..
        } = self;
        let rq = run_queues.as_mut().expect("batched policy");
        let window = rq.queues.len() * rq.batch;
        let mut pulled = 0;
        for _ in 0..window {
            let Some(sourced) = source.pull() else {
                break;
            };
            let plan = plan_accesses(&sourced.program, db, *noise, plan_rng);
            for &(k, _) in plan.accesses.entries() {
                rq.sketch.observe(k);
            }
            let class = conflict_class(&sourced.program, &plan, &rq.sketch, rq.queues.len());
            rq.queues[class].push_back(Admitted {
                program: sourced.program,
                plan,
                ticket: sourced.ticket,
                started: sourced.started,
            });
            pulled += 1;
        }
        rq.queued = pulled;
    }
}

/// The conflict class of a planned transaction: the **hottest key of the
/// planned footprint**, hashed onto the class space. Hotness comes from
/// the admitter's frequency sketch over recent footprints, so positional
/// skew (hot/cold generators put hot keys first) and popularity skew
/// (scrambled Zipf scatters them anywhere) both classify correctly; ties
/// — e.g. a cold sketch right after startup — fall back to the
/// pre-admission hint ([`Program::hot_key_hint`]).
fn conflict_class(program: &Program, plan: &Plan, sketch: &HotSketch, classes: usize) -> usize {
    let hint = program.hot_key_hint();
    let entries = plan.accesses.entries();
    let key = match entries.first() {
        None => hint.unwrap_or(0),
        Some(&(first, _)) => {
            let mut best = first;
            let mut best_h = sketch.hotness(first);
            for &(k, _) in &entries[1..] {
                let h = sketch.hotness(k);
                if h > best_h || (h == best_h && Some(k) == hint) {
                    best = k;
                    best_h = h;
                }
            }
            best
        }
    };
    (fx_hash_u64(key) % classes as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SyntheticSource;
    use orthrus_storage::Table;
    use orthrus_workload::{MicroSpec, Spec};

    fn flat(n: usize) -> Database {
        Database::Flat(Table::new(n, 64))
    }

    fn keys_of(p: &Program) -> Vec<u64> {
        match p {
            Program::ReadOnly { keys } | Program::Rmw { keys } => keys.clone(),
            _ => panic!("micro workloads yield key programs"),
        }
    }

    /// Sorted multiset fingerprint of a window of programs.
    fn fingerprint(ps: &[Program]) -> Vec<Vec<u64>> {
        let mut v: Vec<Vec<u64>> = ps.iter().map(keys_of).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn fifo_admits_in_generator_order() {
        let spec = MicroSpec::uniform(256, 4, false);
        let db = flat(256);
        let mut admit = Admitter::new(
            &AdmissionPolicy::Fifo,
            SyntheticSource::new(Spec::Micro(spec.clone()).generator(9, 1)),
            9,
            1,
            0,
        );
        let mut reference = spec.generator(9, 1);
        for _ in 0..64 {
            let a = admit.next(&db).expect("synthetic sources always admit");
            assert_eq!(a.program, reference.next_program());
            assert_eq!(admit.queued(), 0, "fifo never queues ahead");
        }
    }

    #[test]
    fn conflict_batch_windows_conserve_the_generator_stream() {
        // Every refill window must be admitted as a permutation of the
        // corresponding generation window: nothing is dropped, nothing
        // starves, even with a hot class that dominates the stream.
        let spec = MicroSpec::hot_cold(1024, 4, 2, 4, false);
        let policy = AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 8,
        };
        let db = flat(1024);
        let mut admit = Admitter::new(
            &policy,
            SyntheticSource::new(Spec::Micro(spec.clone()).generator(7, 0)),
            7,
            0,
            0,
        );
        let mut reference = spec.generator(7, 0);
        let window = 4 * 8;
        let mut reordered_somewhere = false;
        for _ in 0..4 {
            let admitted: Vec<Program> = (0..window)
                .map(|_| admit.next(&db).expect("synthetic").program)
                .collect();
            let generated: Vec<Program> = (0..window).map(|_| reference.next_program()).collect();
            reordered_somewhere |= admitted != generated;
            assert_eq!(
                fingerprint(&admitted),
                fingerprint(&generated),
                "window must be a permutation of the generator stream"
            );
            assert_eq!(admit.queued(), 0, "window fully drained before refill");
        }
        assert!(reordered_somewhere, "class batching must actually reorder");
    }

    #[test]
    fn conflict_batch_drains_back_to_back_runs() {
        // With 4 distinct hot keys leading each transaction, admissions
        // come out in same-class runs (bounded by the batch cap), not in
        // generator interleaving.
        let spec = MicroSpec::hot_cold(1024, 4, 1, 3, false);
        let policy = AdmissionPolicy::ConflictBatch {
            classes: 8,
            batch: 4,
        };
        let db = flat(1024);
        let mut admit = Admitter::new(
            &policy,
            SyntheticSource::new(Spec::Micro(spec.clone()).generator(3, 0)),
            3,
            0,
            0,
        );
        let window = 8 * 4;
        // A fresh (all-zero) sketch classifies by the pre-admission hint,
        // which for hot/cold programs is the same hot key the admitter's
        // evolving sketch converges on.
        let fresh = HotSketch::new();
        let classes: Vec<usize> = (0..window)
            .map(|_| {
                let a = admit.next(&db).expect("synthetic sources always admit");
                conflict_class(&a.program, &a.plan, &fresh, 8)
            })
            .collect();
        let mut runs = Vec::new();
        let mut len = 1;
        for w in classes.windows(2) {
            if w[0] == w[1] {
                len += 1;
            } else {
                runs.push(len);
                len = 1;
            }
        }
        runs.push(len);
        let avg = window as f64 / runs.len() as f64;
        assert!(
            avg > 1.5,
            "same-class admissions must clump: runs {runs:?} (avg {avg:.2})"
        );
    }

    #[test]
    fn saturated_single_class_never_livelocks() {
        // Every transaction is the same single hot key: one class holds
        // the whole window, and the rotation must keep re-granting its
        // batch budget rather than spinning on empty siblings.
        let spec = MicroSpec::hot_cold(64, 1, 1, 1, false);
        let policy = AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 2,
        };
        let db = flat(64);
        let mut admit = Admitter::new(
            &policy,
            SyntheticSource::new(Spec::Micro(spec).generator(1, 0)),
            1,
            0,
            0,
        );
        for _ in 0..64 {
            let a = admit.next(&db).expect("synthetic sources always admit");
            assert_eq!(keys_of(&a.program), vec![0], "the one hot key");
        }
    }

    #[test]
    fn replan_uses_corrected_estimates() {
        // replan must not re-apply admission noise (noise only perturbs
        // TPC-C reconnaissance, but the contract is policy-independent).
        let db = flat(128);
        let mut admit = Admitter::new(
            &AdmissionPolicy::Fifo,
            SyntheticSource::new(Spec::Micro(MicroSpec::uniform(128, 2, false)).generator(2, 0)),
            2,
            0,
            50,
        );
        let a = admit.next(&db).expect("synthetic sources always admit");
        let replanned = admit.replan(&a.program, &db);
        assert_eq!(a.plan.accesses, replanned.accesses);
    }

    #[test]
    fn policy_parsing_round_trips() {
        assert_eq!("fifo".parse(), Ok(AdmissionPolicy::Fifo));
        assert_eq!("batch".parse(), Ok(AdmissionPolicy::conflict_batch()));
        assert_eq!(
            "batch:4:32".parse(),
            Ok(AdmissionPolicy::ConflictBatch {
                classes: 4,
                batch: 32
            })
        );
        assert_eq!(
            "conflict-batch".parse(),
            Ok(AdmissionPolicy::conflict_batch())
        );
        assert_eq!("adaptive".parse(), Ok(AdmissionPolicy::adaptive()));
        assert_eq!(
            "adaptive:30:3:64".parse(),
            Ok(AdmissionPolicy::Adaptive {
                classes: DEFAULT_CONFLICT_CLASSES,
                max_batch: DEFAULT_CLASS_BATCH,
                threshold_pct: 30,
                hysteresis: 3,
                epoch: 64,
            })
        );
        assert_eq!(
            "adaptive:30:3:64:4:32".parse(),
            Ok(AdmissionPolicy::Adaptive {
                classes: 4,
                max_batch: 32,
                threshold_pct: 30,
                hysteresis: 3,
                epoch: 64,
            })
        );
        for bad in [
            "",
            "lifo",
            "batch:0:4",
            "batch:4:0",
            "batch:x:y",
            "batch:1",
            "adaptive:30",
            "adaptive:30:3",
            "adaptive:0:3:64",       // zero threshold
            "adaptive:30:0:64",      // zero hysteresis
            "adaptive:30:3:1",       // epoch length 1
            "adaptive:30:3:64:0:16", // zero classes
            "adaptive:30:3:64:4:0",  // zero max_batch
            "adaptive:x:3:64",
        ] {
            assert!(bad.parse::<AdmissionPolicy>().is_err(), "{bad:?}");
        }
        for p in [
            AdmissionPolicy::Fifo,
            AdmissionPolicy::conflict_batch(),
            AdmissionPolicy::ConflictBatch {
                classes: 3,
                batch: 7,
            },
            AdmissionPolicy::adaptive(),
            AdmissionPolicy::Adaptive {
                classes: 3,
                max_batch: 4,
                threshold_pct: 55,
                hysteresis: 4,
                epoch: 32,
            },
        ] {
            assert_eq!(p.to_string().parse(), Ok(p.clone()));
        }
    }

    // ---- AdaptiveController -----------------------------------------

    #[test]
    fn controller_promotes_and_demotes_with_hysteresis() {
        let mut c = AdaptiveController::new(40, 2, 16);
        assert!(!c.batching());
        // One hot epoch is not enough…
        assert_eq!(c.observe_epoch(100, 100), (false, 2));
        // …the second consecutive one promotes, at the bottom rung.
        assert_eq!(c.observe_epoch(100, 100), (true, 2));
        assert_eq!(c.switches(), 1);
        // Sustained heat climbs the ladder to the configured cap.
        assert_eq!(c.observe_epoch(100, 100), (true, 4));
        assert_eq!(c.observe_epoch(100, 100), (true, 8));
        assert_eq!(c.observe_epoch(100, 100), (true, 16));
        assert_eq!(c.observe_epoch(100, 100), (true, 16));
        // Cooling steps the depth down while the demote streak builds
        // (threshold 40 → demote below 20), then demotes.
        assert_eq!(c.observe_epoch(0, 100), (true, 8));
        assert_eq!(c.observe_epoch(0, 100), (false, 2));
        assert_eq!(c.switches(), 2);
    }

    #[test]
    fn controller_holds_inside_the_hysteresis_band() {
        let mut c = AdaptiveController::new(40, 2, 16);
        c.observe_epoch(100, 100);
        c.observe_epoch(100, 100);
        assert!(c.batching());
        let depth = c.batch();
        // Rates in [demote, promote) = [20, 40): neither hot nor cold —
        // mode and depth both hold, streaks reset.
        for _ in 0..50 {
            assert_eq!(c.observe_epoch(30, 100), (true, depth));
        }
        assert_eq!(c.switches(), 1);
    }

    #[test]
    fn controller_does_not_flap_at_the_threshold() {
        // A conflict rate oscillating exactly at the promote threshold:
        // hot epochs alternate with in-band epochs, so a K=2 streak never
        // accumulates — zero switches, not one per oscillation.
        let mut c = AdaptiveController::new(40, 2, 16);
        for i in 0..1000u64 {
            let rate = if i % 2 == 0 { 40 } else { 39 };
            c.observe_epoch(rate, 100);
        }
        assert_eq!(c.switches(), 0, "threshold oscillation must not flap");
        // K=1 under an adversarial full-swing signal is the worst case
        // the epochs/K bound allows — exactly one switch per epoch, which
        // is what makes the bound tight (the generic bound is
        // proptest-pinned in crate::proptests).
        let mut c = AdaptiveController::new(40, 1, 16);
        let epochs = 1000u64;
        for i in 0..epochs {
            c.observe_epoch(if i % 2 == 0 { 100 } else { 0 }, 100);
        }
        assert_eq!(c.switches(), epochs, "K=1 full swing flips every epoch");
    }

    // ---- Adaptive admission ------------------------------------------

    fn adaptive_policy(epoch: u32, hysteresis: u32) -> AdmissionPolicy {
        AdmissionPolicy::Adaptive {
            classes: 4,
            max_batch: 8,
            threshold_pct: 40,
            hysteresis,
            epoch,
        }
    }

    #[test]
    fn adaptive_without_signal_is_the_seed_fifo_stream() {
        let spec = MicroSpec::uniform(256, 4, false);
        let db = flat(256);
        let mut admit = Admitter::new(
            &AdmissionPolicy::adaptive(),
            SyntheticSource::new(Spec::Micro(spec.clone()).generator(9, 1)),
            9,
            1,
            0,
        );
        let mut reference = spec.generator(9, 1);
        // 300 admissions cross at least two default epochs (128): with a
        // zero conflict signal the controller never leaves FIFO and the
        // stream is the seed's, admission by admission.
        for _ in 0..300 {
            let a = admit.next(&db).expect("synthetic sources always admit");
            assert_eq!(a.program, reference.next_program());
            assert_eq!(admit.queued(), 0, "fifo mode must not queue ahead");
        }
        assert!(!admit.batching());
        assert_eq!(admit.switches(), 0);
    }

    #[test]
    fn adaptive_promotes_under_sustained_conflict_signal() {
        let spec = MicroSpec::hot_cold(1024, 4, 2, 4, false);
        let db = flat(1024);
        let mut admit = Admitter::new(
            &adaptive_policy(16, 2),
            SyntheticSource::new(Spec::Micro(spec.clone()).generator(7, 0)),
            7,
            0,
            0,
        );
        for _ in 0..3 * 16 {
            let run = admit.next_run(&db, 8);
            // Two deferrals per admitted transaction: rate 200 ≥ 40.
            admit.note_lock_waits(run.len() as u32 * 2);
        }
        assert!(admit.batching(), "two hot epochs must promote");
        assert_eq!(admit.switches(), 1);
        // Batched mode produces real multi-transaction runs.
        let saw_multi = (0..64).any(|_| {
            let run = admit.next_run(&db, 8);
            admit.note_lock_waits(run.len() as u32 * 2);
            run.len() > 1
        });
        assert!(saw_multi, "promotion must enable fused runs");
    }

    #[test]
    fn adaptive_conserves_the_generator_stream_across_switches() {
        // Alternate hot and cold signal phases to force at least two live
        // Fifo↔ConflictBatch transitions, then drain: every generated
        // transaction must be admitted exactly once (multiset equality
        // with the raw generator stream).
        let spec = MicroSpec::hot_cold(1024, 4, 2, 4, false);
        let db = flat(1024);
        let mut admit = Admitter::new(
            &adaptive_policy(8, 1),
            SyntheticSource::new(Spec::Micro(spec.clone()).generator(7, 0)),
            7,
            0,
            0,
        );
        let mut reference = spec.generator(7, 0);
        let mut admitted: Vec<Program> = Vec::new();
        for phase in 0..4 {
            let hot = phase % 2 == 0;
            for _ in 0..40 {
                let run = admit.next_run(&db, 4);
                if hot {
                    admit.note_lock_waits(run.len() as u32 * 2);
                }
                admitted.extend(run.into_iter().map(|a| a.program));
            }
        }
        assert!(
            admit.switches() >= 2,
            "signal phases must force ≥ 2 transitions, saw {}",
            admit.switches()
        );
        // Cool down (no signal → demote) and drain the backlog dry.
        let mut guard = 0;
        while admit.batching() || admit.queued() > 0 {
            admitted.extend(admit.next_run(&db, 4).into_iter().map(|a| a.program));
            guard += 1;
            assert!(guard < 10_000, "drain must terminate");
        }
        let generated: Vec<Program> = (0..admitted.len())
            .map(|_| reference.next_program())
            .collect();
        assert_eq!(
            fingerprint(&admitted),
            fingerprint(&generated),
            "no transaction lost or duplicated across live policy switches"
        );
    }

    #[test]
    fn demotion_backlog_drains_before_any_new_generation() {
        // A demotion that lands while a refill window is still queued must
        // not strand it: FIFO mode drains the backlog one admission at a
        // time (same round-robin rotation, so the per-class cap's wait
        // bound survives the switch) before generating anything new.
        let spec = MicroSpec::hot_cold(1024, 4, 2, 4, false);
        let db = flat(1024);
        let mut admit = Admitter::new(
            &adaptive_policy(2, 1),
            SyntheticSource::new(Spec::Micro(spec.clone()).generator(3, 0)),
            3,
            0,
            0,
        );
        // Promote and keep the signal hot until the ladder has grown the
        // refill window deep enough that a backlog outlives the (2-epoch)
        // demotion lag, then stop the signal.
        let mut guard = 0;
        while !(admit.batching() && admit.queued() >= 16) {
            admit.next_run(&db, 1);
            admit.note_lock_waits(8);
            guard += 1;
            assert!(guard < 10_000, "promotion with a deep backlog must happen");
        }
        // Cold epochs now demote (K = 1) while the backlog is queued.
        let mut saw_fifo_backlog = false;
        let mut guard = 0;
        while admit.queued() > 0 {
            let before = admit.queued();
            let run = admit.next_run(&db, 1);
            if !admit.batching() {
                saw_fifo_backlog = true;
                assert_eq!(run.len(), 1, "backlog drains one per admission");
                assert_eq!(
                    admit.queued(),
                    before - 1,
                    "fifo mode must drain, never refill"
                );
            }
            guard += 1;
            assert!(guard < 1000, "backlog drain must terminate");
        }
        assert!(
            saw_fifo_backlog,
            "the demotion must land while transactions were queued"
        );
        assert!(admit.switches() >= 2);
    }

    // ---- Sketch decay clock ------------------------------------------

    #[test]
    fn sketch_decays_only_on_the_boundary_tick() {
        let mut s = HotSketch::new();
        let n = HotSketch::DECAY_EVERY + 100;
        for _ in 0..n {
            s.observe(42);
        }
        // Quota exceeded, but no boundary tick yet: counters intact.
        assert_eq!(s.hotness(42), n);
        s.decay_tick();
        assert_eq!(s.hotness(42), n / 2, "the boundary tick halves");
        // A tick before the next quota is a no-op.
        s.observe(42);
        let h = s.hotness(42);
        s.decay_tick();
        assert_eq!(s.hotness(42), h);
    }

    #[test]
    fn sketch_decay_waits_for_the_refill_boundary() {
        // Prime the sketch just under the decay quota, then admit one
        // full ConflictBatch window: the quota is crossed *mid-window*,
        // but the halving must wait for the next refill boundary so the
        // whole window is classified against one sketch state.
        let spec = MicroSpec::hot_cold(1024, 4, 2, 4, false);
        let policy = AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 8,
        };
        let db = flat(1024);
        let mut admit = Admitter::new(
            &policy,
            SyntheticSource::new(Spec::Micro(spec.clone()).generator(5, 0)),
            5,
            0,
            0,
        );
        let hot_before = {
            let rq = admit.run_queues.as_mut().expect("batched policy");
            for _ in 0..HotSketch::DECAY_EVERY - 8 {
                rq.sketch.observe(7);
            }
            rq.sketch.hotness(7)
        };
        let window = 4 * 8;
        for i in 0..window {
            admit.next(&db).expect("synthetic");
            let h = admit.run_queues.as_ref().unwrap().sketch.hotness(7);
            assert!(h >= hot_before, "decay mid-window at admission {i}");
        }
        assert_eq!(admit.queued(), 0);
        // The next admission refills — the boundary tick halves first.
        admit.next(&db).expect("synthetic");
        let h = admit.run_queues.as_ref().unwrap().sketch.hotness(7);
        assert!(h < hot_before, "the refill boundary must apply the decay");
    }
}
