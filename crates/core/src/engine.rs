//! The ORTHRUS engine: queue fabric wiring and the run protocol.
//!
//! The fabric is a full mesh of SPSC rings, one per (producer, consumer)
//! pair (Section 3.1): every execution thread has a private ring into
//! every CC thread (acquires and releases), every CC thread has a private
//! ring into every other CC thread (forwards) and into every execution
//! thread (grants). Ring capacities are sized from the in-flight bounds so
//! the steady state never blocks on a full ring:
//!
//! - exec→cc: ≤ 1 acquire + 1 release per in-flight transaction;
//! - cc→cc: ≤ 1 in-flight forward per in-flight transaction system-wide;
//! - cc→exec: ≤ 1 outstanding grant per in-flight transaction.
//!
//! Messages move in **batches** ([`OrthrusConfig::flush_threshold`]):
//! both thread kinds stage outgoing messages per destination during one
//! scheduling quantum and publish each destination's batch with a single
//! slice push (one atomic store), and drain their inputs in per-lane
//! batches. Staged messages are a subset of the same in-flight bounds
//! above — batching moves queue occupancy out of the rings, never adds to
//! it — so the capacity sizing (and the deadlock-freedom argument that
//! rests on it) is unchanged from the per-message fabric, which remains
//! available as `flush_threshold = 1`.

use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use orthrus_common::runtime::{timed_run, RunCtl, RunParams};
use orthrus_common::{Backoff, RunStats, ThreadStats};
use orthrus_spsc::{channel, Consumer, FanIn, Producer};
use orthrus_txn::Database;
use orthrus_workload::Spec;
use parking_lot::Mutex;

use crate::cc::{CcState, OutMsg};
use crate::config::OrthrusConfig;
use crate::msg::{CcRequest, ExecResponse};

/// Endpoints handed to one CC thread at startup.
struct CcEndpoints {
    fanin: FanIn<CcRequest>,
    to_cc: Vec<Producer<CcRequest>>,
    to_exec: Vec<Producer<ExecResponse>>,
}

/// Endpoints handed to one execution thread at startup.
struct ExecEndpoints {
    fanin: FanIn<ExecResponse>,
    to_cc: Vec<Producer<CcRequest>>,
}

/// The assembled engine.
pub struct OrthrusEngine {
    db: Arc<Database>,
    spec: Spec,
    cfg: OrthrusConfig,
}

impl OrthrusEngine {
    /// Build an engine over `db` running `spec`.
    ///
    /// # Panics
    /// Rejects configurations [`OrthrusConfig::validate`] flags (zero
    /// thread counts, zero in-flight cap, degenerate admission or
    /// assignment shapes) — better a loud construction failure than an
    /// engine that silently hangs or starves at run time.
    pub fn new(db: Arc<Database>, spec: Spec, cfg: OrthrusConfig) -> Self {
        if let Err(why) = cfg.validate() {
            panic!("invalid OrthrusConfig: {why}");
        }
        OrthrusEngine { db, spec, cfg }
    }

    /// The engine configuration.
    pub fn config(&self) -> &OrthrusConfig {
        &self.cfg
    }

    /// Run the workload. `params.threads` is ignored in favour of the
    /// engine's CC/exec split (the harness sets them consistently).
    // Indexed loops keep the (producer, consumer) ring-matrix wiring
    // visibly symmetric; iterator forms obscure which side is which.
    #[allow(clippy::needless_range_loop)]
    pub fn run(&self, params: &RunParams) -> RunStats {
        let c = self.cfg.n_cc;
        let e = self.cfg.n_exec;
        let inflight = self.cfg.max_inflight;
        let exec_cc_cap = self.cfg.exec_queue_capacity.unwrap_or(2 * inflight + 4);
        let cc_cc_cap = e * inflight + 4;
        let cc_exec_cap = inflight + 4;

        // Build the mesh. Consumer lane order inside each fan-in does not
        // matter (round-robin polling), only completeness does.
        let mut cc_in: Vec<Vec<Consumer<CcRequest>>> = (0..c).map(|_| Vec::new()).collect();
        let mut exec_in: Vec<Vec<Consumer<ExecResponse>>> = (0..e).map(|_| Vec::new()).collect();
        let mut exec_to_cc: Vec<Vec<Producer<CcRequest>>> = (0..e).map(|_| Vec::new()).collect();
        let mut cc_to_cc: Vec<Vec<Producer<CcRequest>>> = (0..c).map(|_| Vec::new()).collect();
        let mut cc_to_exec: Vec<Vec<Producer<ExecResponse>>> = (0..c).map(|_| Vec::new()).collect();

        for ex in 0..e {
            for cc in 0..c {
                let (p, co) = channel(exec_cc_cap);
                exec_to_cc[ex].push(p);
                cc_in[cc].push(co);
            }
        }
        for src in 0..c {
            for dst in 0..c {
                let (p, co) = channel(cc_cc_cap);
                cc_to_cc[src].push(p);
                cc_in[dst].push(co);
            }
        }
        for cc in 0..c {
            for ex in 0..e {
                let (p, co) = channel(cc_exec_cap);
                cc_to_exec[cc].push(p);
                exec_in[ex].push(co);
            }
        }

        let cc_slots: Vec<Mutex<Option<CcEndpoints>>> = cc_in
            .into_iter()
            .zip(cc_to_cc)
            .zip(cc_to_exec)
            .map(|((lanes, to_cc), to_exec)| {
                Mutex::new(Some(CcEndpoints {
                    fanin: FanIn::new(lanes),
                    to_cc,
                    to_exec,
                }))
            })
            .collect();
        let exec_slots: Vec<Mutex<Option<ExecEndpoints>>> = exec_in
            .into_iter()
            .zip(exec_to_cc)
            .map(|(lanes, to_cc)| {
                Mutex::new(Some(ExecEndpoints {
                    fanin: FanIn::new(lanes),
                    to_cc,
                }))
            })
            .collect();

        let active_execs = AtomicUsize::new(e);
        // Pre-size each CC's table for its share of hot keys; entries are
        // created on demand and kept forever.
        let table_capacity = 4096;
        // Shared-table mode (Section 3.4): one latched table serves every
        // CC thread.
        let shared_table = match self.cfg.cc_mode {
            crate::config::CcMode::Partitioned => None,
            crate::config::CcMode::SharedTable => Some(Arc::new(orthrus_lockmgr::LockTable::new(
                self.cfg.shared_table_buckets,
            ))),
        };

        timed_run(
            c + e,
            params.warmup,
            params.measure,
            |i| i >= c, // only execution threads define the breakdown
            |i, ctl| {
                if i < c {
                    let ep = cc_slots[i].lock().take().expect("cc endpoints taken twice");
                    let flush = self.cfg.effective_flush_threshold();
                    match &shared_table {
                        None => run_cc(i as u32, table_capacity, flush, ep, ctl, &active_execs),
                        Some(table) => {
                            run_cc_shared(Arc::clone(table), flush, ep, ctl, &active_execs)
                        }
                    }
                } else {
                    let ex = i - c;
                    let ep = exec_slots[ex]
                        .lock()
                        .take()
                        .expect("exec endpoints taken twice");
                    let gen = self.spec.generator(params.seed, ex);
                    // Admission is thread-local: each execution thread owns
                    // its policy state (generator, planning RNG, any
                    // conflict-class run queues).
                    let admit = crate::admit::Admitter::new(
                        &self.cfg.admission,
                        gen,
                        params.seed,
                        ex as u16,
                        self.cfg.ollp_noise_pct,
                    );
                    let thread = crate::exec::ExecThread::new(
                        ex as u16, &self.db, &self.cfg, ep.to_cc, ep.fanin, admit,
                    );
                    thread.run(ctl, &active_execs)
                }
            },
        )
    }
}

/// Per-destination staging for a CC thread's outgoing messages. One drain
/// round's forwards and grants are coalesced per destination and flushed
/// as a single slice (one atomic publish) — a CC thread granting several
/// spans to the same execution thread in one round emits one batched
/// flush instead of one ring transaction per grant.
struct CcOutBufs {
    to_cc: Vec<Vec<CcRequest>>,
    to_exec: Vec<Vec<ExecResponse>>,
}

impl CcOutBufs {
    fn new(n_cc: usize, n_exec: usize, flush: usize) -> Self {
        CcOutBufs {
            to_cc: (0..n_cc).map(|_| Vec::with_capacity(flush)).collect(),
            to_exec: (0..n_exec).map(|_| Vec::with_capacity(flush)).collect(),
        }
    }

    /// Stage one routed message; returns immediately (no ring traffic).
    #[inline]
    fn stage(&mut self, msg: OutMsg, stats: &mut ThreadStats) {
        match msg {
            OutMsg::ToCc { cc, req } => self.to_cc[cc as usize].push(req),
            OutMsg::ToExec { exec, resp } => self.to_exec[exec as usize].push(resp),
        }
        stats.messages_sent += 1;
    }

    /// Publish every staged message, one slice per destination.
    fn flush(&mut self, ep: &mut CcEndpoints) {
        for (cc, buf) in self.to_cc.iter_mut().enumerate() {
            if !buf.is_empty() {
                ep.to_cc[cc].push_slice(buf);
            }
        }
        for (exec, buf) in self.to_exec.iter_mut().enumerate() {
            if !buf.is_empty() {
                ep.to_exec[exec].push_slice(buf);
            }
        }
    }
}

/// The CC thread loop: a tight, latch-free request pump (Section 3.1,
/// "concurrency control threads run a tight loop which sequentially
/// processes requests"), batched: each poll drains up to `flush_threshold`
/// requests from the fan-in in one sweep, and the round's outgoing
/// messages are coalesced per destination and flushed as slices. With
/// `flush_threshold == 1` this degenerates to the seed's
/// one-message-per-atomic-publish pump.
fn run_cc(
    id: u32,
    table_capacity: usize,
    flush_threshold: usize,
    mut ep: CcEndpoints,
    ctl: &RunCtl,
    active_execs: &AtomicUsize,
) -> ThreadStats {
    let mut state = CcState::new(id, table_capacity);
    let mut stats = ThreadStats::default();
    let mut out: Vec<OutMsg> = Vec::with_capacity(16);
    let drain_budget = flush_threshold;
    let mut in_buf: Vec<CcRequest> = Vec::with_capacity(drain_budget);
    let mut out_bufs = CcOutBufs::new(ep.to_cc.len(), ep.to_exec.len(), drain_budget);
    let mut backoff = Backoff::new();
    let mut in_window = false;
    loop {
        if !in_window && ctl.is_measuring() {
            stats.reset_window();
            in_window = true;
        }
        let drained = ep.fanin.drain_round(&mut in_buf, drain_budget);
        if drained > 0 {
            for req in in_buf.drain(..) {
                state.handle(req, &mut out);
                for msg in out.drain(..) {
                    out_bufs.stage(msg, &mut stats);
                }
            }
            out_bufs.flush(&mut ep);
            backoff.reset();
        } else if ctl.is_stopped() && active_execs.load(std::sync::atomic::Ordering::Acquire) == 0 {
            // Every exec flushed its final sends before decrementing, and
            // forwards only exist while acquires are unresolved — one last
            // sweep and we are done.
            if ep.fanin.is_empty() {
                break;
            }
        } else {
            backoff.snooze();
        }
    }
    // CC threads contribute only message counts to the merged stats; their
    // CPU time is not part of the Figure-10 execution-thread breakdown.
    stats.execution_ns = 0;
    stats.locking_ns = 0;
    stats.waiting_ns = 0;
    stats
}

/// The Section-3.4 CC loop: pump requests against the shared latched
/// table, re-polling parked acquisitions each iteration (grants arrive
/// from *other* CC threads' releases through the shared table).
fn run_cc_shared(
    table: Arc<orthrus_lockmgr::LockTable>,
    flush_threshold: usize,
    mut ep: CcEndpoints,
    ctl: &RunCtl,
    active_execs: &AtomicUsize,
) -> ThreadStats {
    let mut state = crate::shared::SharedCcState::new(table);
    let mut stats = ThreadStats::default();
    let mut out: Vec<OutMsg> = Vec::with_capacity(16);
    let drain_budget = flush_threshold;
    let mut in_buf: Vec<CcRequest> = Vec::with_capacity(drain_budget);
    let mut out_bufs = CcOutBufs::new(ep.to_cc.len(), ep.to_exec.len(), drain_budget);
    let mut backoff = Backoff::new();
    let mut in_window = false;
    loop {
        if !in_window && ctl.is_measuring() {
            stats.reset_window();
            in_window = true;
        }
        let mut progress = false;
        if ep.fanin.drain_round(&mut in_buf, drain_budget) > 0 {
            for req in in_buf.drain(..) {
                state.handle(req, &mut out);
            }
            progress = true;
        }
        progress |= state.poll_pending(&mut out) > 0;
        for msg in out.drain(..) {
            out_bufs.stage(msg, &mut stats);
        }
        out_bufs.flush(&mut ep);
        if progress {
            backoff.reset();
        } else if ctl.is_stopped()
            && active_execs.load(std::sync::atomic::Ordering::Acquire) == 0
            && state.pending_count() == 0
        {
            if ep.fanin.is_empty() {
                break;
            }
        } else {
            backoff.snooze();
        }
    }
    stats.execution_ns = 0;
    stats.locking_ns = 0;
    stats.waiting_ns = 0;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_common::runtime::RunParams;
    use orthrus_storage::tpcc::{TpccConfig, TpccDb};
    use orthrus_storage::{PartitionedTable, Table};
    use orthrus_workload::{MicroSpec, PartitionConstraint, TpccSpec};

    use crate::config::{CcAssignment, DEFAULT_FLUSH_THRESHOLD};

    fn quick() -> RunParams {
        RunParams::quick(0) // threads field unused by OrthrusEngine
    }

    #[test]
    fn single_cc_uniform_rmw_exact_counts() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(128, 64)));
        let spec = Spec::Micro(MicroSpec::uniform(128, 4, false));
        let cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0, "no progress");
        assert_eq!(stats.totals.aborts(), 0);
        let total: u64 = (0..128).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn multi_cc_contended_rmw_exact_counts() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        // 2 hot of 8, 4 ops total: heavy conflicts across 4 CC threads.
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let cfg = OrthrusConfig::with_threads(4, 4, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn read_only_workload_counts_nothing_but_commits() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, true));
        let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        assert_eq!(stats.totals.aborts(), 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, 0, "read-only must not write");
    }

    #[test]
    fn exact_partition_spans_drive_multiple_ccs() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(256, 64)));
        let spec = Spec::Micro(
            MicroSpec::uniform(256, 8, false)
                .with_constraint(PartitionConstraint::Exact { count: 4, of: 4 }),
        );
        let cfg = OrthrusConfig::with_threads(4, 2, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..256).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 8);
        // Message economics with forwarding: Ncc+1 acquire-path messages +
        // Ncc releases per txn = 2·Ncc + 1 = 9 per commit.
        let per_commit = stats.totals.messages_sent as f64 / stats.totals.committed as f64;
        assert!(
            (8.0..=10.5).contains(&per_commit),
            "messages/commit {per_commit:.2}, expected ≈9"
        );
    }

    #[test]
    fn forwarding_saves_messages() {
        let _serial = crate::test_serial();
        let mk = |forwarding: bool| {
            let db = Arc::new(Database::Flat(Table::new(256, 64)));
            let spec = Spec::Micro(
                MicroSpec::uniform(256, 8, false)
                    .with_constraint(PartitionConstraint::Exact { count: 4, of: 4 }),
            );
            let mut cfg = OrthrusConfig::with_threads(4, 2, CcAssignment::KeyModulo);
            cfg.forwarding = forwarding;
            let engine = OrthrusEngine::new(db, spec, cfg);
            let stats = engine.run(&quick());
            stats.totals.messages_sent as f64 / stats.totals.committed.max(1) as f64
        };
        let with = mk(true); // Ncc+1 + Ncc releases ≈ 9
        let without = mk(false); // 2·Ncc + Ncc releases ≈ 12
        assert!(
            without > with + 1.5,
            "forwarding must cut messages: with={with:.2} without={without:.2}"
        );
    }

    #[test]
    fn split_orthrus_runs_on_partitioned_database() {
        let _serial = crate::test_serial();
        // SPLIT ORTHRUS (Section 4.3): index partitions aligned with CC
        // partitions (both key % 4).
        let db = Arc::new(Database::Partitioned(PartitionedTable::new(256, 64, 4)));
        let spec = Spec::Micro(
            MicroSpec::uniform(256, 4, false)
                .with_constraint(PartitionConstraint::Exact { count: 2, of: 4 }),
        );
        let cfg = OrthrusConfig::with_threads(4, 2, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..256).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn tpcc_money_conservation_under_orthrus() {
        let _serial = crate::test_serial();
        let cfg_t = TpccConfig::tiny(4);
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 21)));
        let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));
        let cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::Warehouse);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let t = db.tpcc();
        let w_delta: u64 = (0..t.warehouses.len())
            .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        let d_delta: u64 = (0..t.districts.len())
            .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
            .sum();
        assert_eq!(w_delta, d_delta);
        let hist_cnt: u64 = (0..t.districts.len())
            .map(|d| unsafe { t.districts.read_with(d, |r| r.history_ctr as u64) })
            .sum();
        let pay_cnt: u64 = (0..t.customers.len())
            .map(|c| unsafe { t.customers.read_with(c, |r| (r.payment_cnt - 1) as u64) })
            .sum();
        assert_eq!(hist_cnt, pay_cnt);
    }

    #[test]
    fn tpcc_with_ollp_noise_recovers() {
        let _serial = crate::test_serial();
        let cfg_t = TpccConfig::tiny(2);
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 33)));
        let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
        cfg.ollp_noise_pct = 50;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        assert!(stats.totals.aborts_ollp > 0, "noise must hit the OLLP path");
        // Conservation must survive the abort/retry churn.
        let t = db.tpcc();
        let w_delta: u64 = (0..t.warehouses.len())
            .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        let d_delta: u64 = (0..t.districts.len())
            .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
            .sum();
        assert_eq!(w_delta, d_delta);
    }

    #[test]
    fn shared_table_mode_exact_counts() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        // Hot contention, multi-key plans: the shared table must still
        // serialize exactly.
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::KeyModulo);
        cfg.cc_mode = crate::config::CcMode::SharedTable;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0, "shared mode made no progress");
        assert_eq!(stats.totals.aborts(), 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn shared_table_mode_read_only() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, true));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
        cfg.cc_mode = crate::config::CcMode::SharedTable;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn flush_threshold_one_reproduces_seed_semantics() {
        let _serial = crate::test_serial();
        // flush_threshold = 1: every send publishes immediately, exactly
        // the pre-batching fabric. The serializability witness and the
        // per-commit message economics must both hold unchanged.
        let db = Arc::new(Database::Flat(Table::new(256, 64)));
        let spec = Spec::Micro(
            MicroSpec::uniform(256, 8, false)
                .with_constraint(PartitionConstraint::Exact { count: 4, of: 4 }),
        );
        let mut cfg = OrthrusConfig::with_threads(4, 2, CcAssignment::KeyModulo);
        cfg.flush_threshold = 1;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..256).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 8);
        let per_commit = stats.totals.messages_sent as f64 / stats.totals.committed as f64;
        assert!(
            (8.0..=10.5).contains(&per_commit),
            "messages/commit {per_commit:.2}, expected ≈9"
        );
    }

    #[test]
    fn deep_batching_keeps_exact_counts() {
        let _serial = crate::test_serial();
        // A flush threshold far above the in-flight cap: flushes happen
        // only at quantum boundaries. Exactness must be unaffected.
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(4, 4, CcAssignment::KeyModulo);
        cfg.flush_threshold = 64;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn deep_batching_with_tiny_rings_still_completes() {
        let _serial = crate::test_serial();
        // Batches larger than the ring: push_slice must publish partial
        // prefixes under backpressure without losing order or messages.
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
        cfg.flush_threshold = 32;
        cfg.exec_queue_capacity = Some(2);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn shared_table_mode_respects_flush_threshold() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::KeyModulo);
        cfg.cc_mode = crate::config::CcMode::SharedTable;
        cfg.flush_threshold = 8;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn conflict_batch_admission_keeps_exact_counts() {
        let _serial = crate::test_serial();
        // Heavy skew on a tiny hot set: conflict-class batching reorders
        // admission, but serializability (exact counter sums) must hold.
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 4, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::KeyModulo);
        cfg.admission = crate::admit::AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 8,
        };
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0, "batched admission stalled");
        assert_eq!(stats.totals.aborts(), 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn conflict_batch_admission_runs_tpcc_with_ollp() {
        let _serial = crate::test_serial();
        // The plan produced at admission must survive the OLLP abort/retry
        // path: conservation holds across re-planned retries.
        let cfg_t = TpccConfig::tiny(2);
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 11)));
        let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
        cfg.admission = crate::admit::AdmissionPolicy::conflict_batch();
        cfg.ollp_noise_pct = 50;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        assert!(stats.totals.aborts_ollp > 0, "noise must hit the OLLP path");
        let t = db.tpcc();
        let w_delta: u64 = (0..t.warehouses.len())
            .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        let d_delta: u64 = (0..t.districts.len())
            .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
            .sum();
        assert_eq!(w_delta, d_delta);
    }

    #[test]
    fn adaptive_admission_keeps_exact_counts_on_both_fabrics() {
        let _serial = crate::test_serial();
        // A hot workload with a promotion-friendly controller (tiny epoch,
        // K = 1, low threshold): policy switches happen live inside the
        // run, and serializability (exact counter sums — every admitted
        // transaction commits exactly once, none lost or duplicated
        // across a switch) must hold on the batched fabric and on the
        // seed's per-message fabric alike.
        for flush_threshold in [DEFAULT_FLUSH_THRESHOLD, 1] {
            let db = Arc::new(Database::Flat(Table::new(64, 64)));
            let spec = Spec::Micro(MicroSpec::hot_cold(64, 4, 2, 4, false));
            let mut cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::KeyModulo);
            cfg.flush_threshold = flush_threshold;
            cfg.admission = crate::admit::AdmissionPolicy::Adaptive {
                classes: 4,
                max_batch: 8,
                threshold_pct: 5,
                hysteresis: 1,
                epoch: 32,
            };
            let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
            let stats = engine.run(&quick());
            assert!(
                stats.totals.committed > 0,
                "flush {flush_threshold}: adaptive admission stalled"
            );
            assert_eq!(stats.totals.aborts(), 0);
            let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
            assert_eq!(
                total,
                stats.totals.committed_all * 4,
                "flush {flush_threshold}: counter sums diverged"
            );
            assert!(
                stats.totals.lock_waits > 0,
                "flush {flush_threshold}: hot workload must report deferrals"
            );
        }
    }

    #[test]
    fn adaptive_admission_runs_tpcc_with_ollp() {
        let _serial = crate::test_serial();
        // Adaptive admission must survive the OLLP abort/retry path in
        // both of its modes: conservation holds across re-planned retries
        // and any live policy switches.
        let cfg_t = TpccConfig::tiny(2);
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 17)));
        let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
        cfg.admission = crate::admit::AdmissionPolicy::Adaptive {
            classes: 4,
            max_batch: 8,
            threshold_pct: 5,
            hysteresis: 1,
            epoch: 32,
        };
        cfg.ollp_noise_pct = 50;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        assert!(stats.totals.aborts_ollp > 0, "noise must hit the OLLP path");
        let t = db.tpcc();
        let w_delta: u64 = (0..t.warehouses.len())
            .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        let d_delta: u64 = (0..t.districts.len())
            .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
            .sum();
        assert_eq!(w_delta, d_delta);
    }

    #[test]
    #[should_panic(expected = "invalid OrthrusConfig")]
    fn engine_rejects_adaptive_epoch_of_one() {
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let spec = Spec::Micro(MicroSpec::uniform(16, 2, false));
        let mut cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        cfg.admission = crate::admit::AdmissionPolicy::Adaptive {
            classes: 4,
            max_batch: 8,
            threshold_pct: 40,
            hysteresis: 2,
            epoch: 1,
        };
        let _ = OrthrusEngine::new(db, spec, cfg);
    }

    #[test]
    #[should_panic(expected = "invalid OrthrusConfig")]
    fn engine_rejects_zero_inflight_cap() {
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let spec = Spec::Micro(MicroSpec::uniform(16, 2, false));
        let mut cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        cfg.max_inflight = 0;
        let _ = OrthrusEngine::new(db, spec, cfg);
    }

    #[test]
    #[should_panic(expected = "invalid OrthrusConfig")]
    fn engine_rejects_zero_conflict_classes() {
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let spec = Spec::Micro(MicroSpec::uniform(16, 2, false));
        let mut cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        cfg.admission = crate::admit::AdmissionPolicy::ConflictBatch {
            classes: 0,
            batch: 1,
        };
        let _ = OrthrusEngine::new(db, spec, cfg);
    }

    #[test]
    fn single_partition_messages_are_three_per_commit() {
        let _serial = crate::test_serial();
        // Single-CC transactions: acquire + grant + release = 3 messages
        // (the Appendix-A "2 message delays" acquire path plus 1 release).
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(
            MicroSpec::uniform(64, 4, false)
                .with_constraint(PartitionConstraint::Exact { count: 1, of: 2 }),
        );
        let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(db, spec, cfg);
        let stats = engine.run(&quick());
        let per_commit = stats.totals.messages_sent as f64 / stats.totals.committed as f64;
        assert!(
            (2.5..=3.5).contains(&per_commit),
            "messages/commit {per_commit:.2}, expected ≈3"
        );
    }
}
