//! The ORTHRUS engine: queue fabric wiring and the run protocol.
//!
//! The fabric is a full mesh of SPSC rings, one per (producer, consumer)
//! pair (Section 3.1): every execution thread has a private ring into
//! every CC thread (acquires and releases), every CC thread has a private
//! ring into every other CC thread (forwards) and into every execution
//! thread (grants). Ring capacities are sized from the in-flight bounds so
//! the steady state never blocks on a full ring:
//!
//! - exec→cc: ≤ 1 acquire + 1 release per in-flight transaction;
//! - cc→cc: ≤ 1 in-flight forward per in-flight transaction system-wide;
//! - cc→exec: ≤ 1 outstanding grant per in-flight transaction.
//!
//! Messages move in **batches** ([`OrthrusConfig::flush_threshold`]):
//! both thread kinds stage outgoing messages per destination during one
//! scheduling quantum and publish each destination's batch with a single
//! slice push (one atomic store), and drain their inputs in per-lane
//! batches. Staged messages are a subset of the same in-flight bounds
//! above — batching moves queue occupancy out of the rings, never adds to
//! it — so the capacity sizing (and the deadlock-freedom argument that
//! rests on it) is unchanged from the per-message fabric, which remains
//! available as `flush_threshold = 1`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use orthrus_common::affinity::pin_to_core;
use orthrus_common::runtime::{timed_run, RunCtl, RunParams};
use orthrus_common::sim;
use orthrus_common::{Backoff, RunStats, ThreadStats};
use orthrus_durability::checkpoint::{run_checkpointer, write_initial_checkpoint};
use orthrus_durability::{run_sync_coordinator, CommandLog, ReplayReport};
use orthrus_spsc::{channel_labeled, Consumer, FanIn, Producer};
use orthrus_txn::Database;
use orthrus_workload::Spec;
use parking_lot::Mutex;

use crate::cc::{CcState, OutMsg};
use crate::config::OrthrusConfig;
use crate::msg::{CcRequest, ExecResponse};
use crate::session::{Session, SubmitShared};
use crate::source::{ClientSource, Completion, Submission, SyntheticSource};

/// A typed shutdown/recovery failure: the error paths the fault injector
/// can reach (fsync failure, a worker killed by an injected fault) report
/// here instead of panicking the client thread, so a harness can observe
/// graceful degradation.
#[derive(Debug)]
pub enum EngineError {
    /// A worker thread panicked; the payload is its panic message. The
    /// engine is stopped and every thread joined — nothing leaks — but
    /// run statistics are lost and the database may hold only a prefix
    /// of the accepted work.
    WorkerPanicked(String),
    /// The final command-log sync failed: the engine stopped cleanly but
    /// the OS-buffered log suffix may not be durable.
    LogSync(std::io::Error),
    /// Recovery could not read or repair the command log.
    Recovery(std::io::Error),
    /// A previous [`EngineHandle::try_shutdown`] already failed with the
    /// contained message; the handle is spent.
    Failed(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::WorkerPanicked(msg) => write!(f, "engine worker panicked: {msg}"),
            EngineError::LogSync(e) => write!(f, "command-log sync failed: {e}"),
            EngineError::Recovery(e) => write!(f, "command-log recovery failed: {e}"),
            EngineError::Failed(msg) => write!(f, "engine already shut down uncleanly: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::LogSync(e) | EngineError::Recovery(e) => Some(e),
            _ => None,
        }
    }
}

/// Render a `JoinHandle::join` panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Endpoints handed to one CC thread at startup.
struct CcEndpoints {
    fanin: FanIn<CcRequest>,
    to_cc: Vec<Producer<CcRequest>>,
    to_exec: Vec<Producer<ExecResponse>>,
}

/// Endpoints handed to one execution thread at startup.
struct ExecEndpoints {
    fanin: FanIn<ExecResponse>,
    to_cc: Vec<Producer<CcRequest>>,
}

/// The assembled engine.
pub struct OrthrusEngine {
    db: Arc<Database>,
    /// The closed-loop workload ([`Self::run`]); `None` for engines built
    /// with [`Self::service`], which are driven by client sessions
    /// instead.
    spec: Option<Spec>,
    cfg: OrthrusConfig,
    /// The command log ([`OrthrusConfig::durability`]): opened once at
    /// construction, shared by every execution thread, synced when a run
    /// or service shuts down. `None` when durability is off.
    log: Option<Arc<CommandLog>>,
}

impl OrthrusEngine {
    /// Build a closed-loop engine over `db` running `spec`
    /// (self-driving: each execution thread generates its own work).
    ///
    /// # Panics
    /// Rejects configurations [`OrthrusConfig::validate`] flags (zero
    /// thread counts, zero in-flight cap, degenerate admission or
    /// assignment shapes) — better a loud construction failure than an
    /// engine that silently hangs or starves at run time.
    pub fn new(db: Arc<Database>, spec: Spec, cfg: OrthrusConfig) -> Self {
        if let Err(why) = cfg.validate() {
            panic!("invalid OrthrusConfig: {why}");
        }
        let log = open_log(&cfg);
        ensure_initial_checkpoint(&cfg, &db, &log);
        OrthrusEngine {
            db,
            spec: Some(spec),
            cfg,
            log,
        }
    }

    /// Build a service-mode engine over `db`: no synthetic workload —
    /// transactions arrive through client [`Session`]s after
    /// [`Self::start`]. Validation as in [`Self::new`].
    pub fn service(db: Arc<Database>, cfg: OrthrusConfig) -> Self {
        if let Err(why) = cfg.validate() {
            panic!("invalid OrthrusConfig: {why}");
        }
        let log = open_log(&cfg);
        ensure_initial_checkpoint(&cfg, &db, &log);
        OrthrusEngine {
            db,
            spec: None,
            cfg,
            log,
        }
    }

    /// Crash recovery: replay the command log at [`OrthrusConfig::log_dir`]
    /// through the engine's own `execute_planned` path to rebuild `db`'s
    /// table state, repair the log's torn tail in place, and return a
    /// **service-mode** engine that continues appending where the valid
    /// prefix ends — plus the replay's audit report.
    ///
    /// `db` must be the same logical snapshot the log started from (for
    /// this reproduction: a freshly loaded database with the original
    /// seed). When the directory holds a valid fuzzy checkpoint, `db` is
    /// overwritten from its image and only the log suffix past it
    /// replays — across [`OrthrusConfig::replay_threads`] when > 1
    /// (footprint-parallel leveling, bit-identical to serial).
    ///
    /// # Panics
    /// On an invalid configuration, a durability mode of `Off` (there is
    /// nothing to recover from), or an unreadable log. Callers that need
    /// to survive an unreadable log use [`Self::try_recover`].
    pub fn recover(db: Arc<Database>, cfg: OrthrusConfig) -> (Self, ReplayReport) {
        Self::try_recover(db, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::recover`], reporting an unreadable or unrepairable log as
    /// a typed [`EngineError::Recovery`] instead of panicking. Config
    /// misuse (invalid shape, durability off) still panics — those are
    /// construction bugs, not runtime faults.
    pub fn try_recover(
        db: Arc<Database>,
        cfg: OrthrusConfig,
    ) -> Result<(Self, ReplayReport), EngineError> {
        if let Err(why) = cfg.validate() {
            panic!("invalid OrthrusConfig: {why}");
        }
        assert!(
            cfg.durability.is_on(),
            "recover() needs durability on; with DurabilityMode::Off there is no log"
        );
        let dir = cfg.log_dir.as_deref().expect("validated: log_dir is set");
        let report = orthrus_durability::recover_with(&db, dir, cfg.replay_threads)
            .map_err(EngineError::Recovery)?;
        Ok((Self::service(db, cfg), report))
    }

    /// The engine configuration.
    pub fn config(&self) -> &OrthrusConfig {
        &self.cfg
    }

    /// Run the closed-loop workload for a timed window.
    ///
    /// # Panics
    /// - on an engine built with [`Self::service`] (no workload spec);
    /// - if `params.threads` is neither `0` ("derive from the engine")
    ///   nor exactly [`OrthrusConfig::total_threads`] — the engine always
    ///   runs its own CC/exec split, and a silently ignored mismatch
    ///   would let a harness mislabel what it measured.
    pub fn run(&self, params: &RunParams) -> RunStats {
        let spec = self
            .spec
            .as_ref()
            .expect("closed-loop run() needs a workload spec; service engines use start()");
        assert!(
            params.threads == 0 || params.threads == self.cfg.total_threads(),
            "RunParams.threads = {} does not match the engine's {} CC + {} exec threads \
             (pass 0 to derive from the engine)",
            params.threads,
            self.cfg.n_cc,
            self.cfg.n_exec,
        );
        let c = self.cfg.n_cc;
        let fabric = build_fabric(&self.cfg);
        let cc_slots: Vec<Mutex<Option<CcEndpoints>>> = fabric
            .cc
            .into_iter()
            .map(|ep| Mutex::new(Some(ep)))
            .collect();
        let exec_slots: Vec<Mutex<Option<ExecEndpoints>>> = fabric
            .exec
            .into_iter()
            .map(|ep| Mutex::new(Some(ep)))
            .collect();
        let active_execs = AtomicUsize::new(self.cfg.n_exec);
        let shared_table = shared_table_for(&self.cfg);
        let aux = AuxThreads::spawn(&self.cfg, &self.log);

        let mut stats = timed_run(
            self.cfg.total_threads(),
            params.warmup,
            params.measure,
            |i| i >= c, // only execution threads define the breakdown
            |i, ctl| {
                if i < c {
                    let ep = cc_slots[i].lock().take().expect("cc endpoints taken twice");
                    let flush = self.cfg.effective_flush_threshold();
                    match &shared_table {
                        None => run_cc(i as u32, CC_TABLE_CAPACITY, flush, ep, ctl, &active_execs),
                        Some(table) => {
                            run_cc_shared(Arc::clone(table), flush, ep, ctl, &active_execs)
                        }
                    }
                } else {
                    let ex = i - c;
                    let ep = exec_slots[ex]
                        .lock()
                        .take()
                        .expect("exec endpoints taken twice");
                    // Admission is thread-local: each execution thread owns
                    // its policy state (source, planning RNG, any
                    // conflict-class run queues). The synthetic source
                    // wraps the seed's generator stream unchanged.
                    let source = SyntheticSource::new(spec.generator(params.seed, ex));
                    let admit = crate::admit::Admitter::new(
                        &self.cfg.admission,
                        source,
                        params.seed,
                        ex as u16,
                        self.cfg.ollp_noise_pct,
                    );
                    let thread = crate::exec::ExecThread::new(
                        ex as u16, &self.db, &self.cfg, ep.to_cc, ep.fanin, admit,
                    )
                    .with_log(self.log.clone());
                    thread.run(ctl, &active_execs)
                }
            },
        );
        // Workers are joined (timed_run returned): every append's
        // watermark is published, so the coordinator's final pass drains
        // the log before it stops.
        let coord = aux
            .finish()
            .unwrap_or_else(|msg| panic!("engine worker panicked: {msg}"));
        stats.totals.merge(&coord);
        if let Some(log) = &self.log {
            // A finished closed-loop run is a clean stop: make it fully
            // replayable even in fsync-free `log` mode.
            log.sync()
                .unwrap_or_else(|e| panic!("command-log sync failed: {e}"));
        }
        stats
    }

    /// Start the engine in **service mode**: spawn its CC and execution
    /// threads as long-lived workers driven by client submissions, and
    /// return the [`EngineHandle`] that owns them. Execution thread `ex`
    /// admits from a bounded ingest ring
    /// ([`OrthrusConfig::ingest_capacity`]) fed by [`Session`]s — see
    /// [`crate::session`] for routing and backpressure — and reports
    /// every ticketed commit through a completion ring the handle
    /// drains.
    ///
    /// `seed` seeds the planning RNGs (the OLLP reconnaissance stream),
    /// exactly as a closed-loop run's `params.seed` would.
    ///
    /// All three admission policies operate unchanged over the client
    /// source; statistics accumulate until [`EngineHandle::shutdown`]
    /// (open a measurement window with
    /// [`EngineHandle::begin_measurement`]).
    pub fn start(&self, seed: u64) -> EngineHandle {
        let cfg = Arc::new(self.cfg.clone());
        let fabric = build_fabric(&cfg);
        let ctl = Arc::new(RunCtl::new());
        let active_execs = Arc::new(AtomicUsize::new(cfg.n_exec));
        let shared_table = shared_table_for(&cfg);
        let aux = AuxThreads::spawn(&cfg, &self.log);
        let mut workers = Vec::with_capacity(cfg.total_threads());
        let mut worker_names = Vec::with_capacity(cfg.total_threads());

        for (cc, ep) in fabric.cc.into_iter().enumerate() {
            let ctl = Arc::clone(&ctl);
            let active = Arc::clone(&active_execs);
            let flush = cfg.effective_flush_threshold();
            let shared = shared_table.clone();
            let name = format!("{}cc{cc}", cfg.sim_prefix);
            worker_names.push(name.clone());
            workers.push(std::thread::spawn(move || {
                // Under a sim scheduler this blocks until every worker
                // (and the client) has enrolled; a no-op otherwise. The
                // guard retires the thread on drop, panics included.
                let _sim = sim::enroll(&name);
                pin_to_core(cc);
                match shared {
                    None => run_cc(cc as u32, CC_TABLE_CAPACITY, flush, ep, &ctl, &active),
                    Some(table) => run_cc_shared(table, flush, ep, &ctl, &active),
                }
            }));
        }

        let mut ingest: Vec<Producer<Submission>> = Vec::with_capacity(cfg.n_exec);
        let mut completions: Vec<Consumer<Completion>> = Vec::with_capacity(cfg.n_exec);
        // Fast-path sizing: everything accepted-but-uncompleted sits in
        // the ingest ring, the admission policy's run queues (up to one
        // refill window), or an in-flight slot; doubling covers a client
        // whose draining lags its submitting by a burst. A client that
        // lags further never wedges the engine — completions overflow to
        // an exec-local buffer and re-flush as the client drains (see
        // `ExecThread::completion_overflow`); the ring only bounds the
        // latch-free fast path.
        let completion_capacity =
            2 * (cfg.ingest_capacity + cfg.admission.max_queued_window() + cfg.max_inflight);
        for (ex, ep) in fabric.exec.into_iter().enumerate() {
            let (submit_tx, submit_rx) =
                channel_labeled::<Submission>(cfg.ingest_capacity, "ingest");
            let (done_tx, done_rx) =
                channel_labeled::<Completion>(completion_capacity, "completion");
            ingest.push(submit_tx);
            completions.push(done_rx);
            let db = Arc::clone(&self.db);
            let cfg = Arc::clone(&cfg);
            let ctl = Arc::clone(&ctl);
            let active = Arc::clone(&active_execs);
            let log = self.log.clone();
            let name = format!("{}exec{ex}", cfg.sim_prefix);
            worker_names.push(name.clone());
            workers.push(std::thread::spawn(move || {
                let _sim = sim::enroll(&name);
                pin_to_core(cfg.n_cc + ex);
                let source = ClientSource::new(submit_rx, cfg.effective_flush_threshold());
                let admit = crate::admit::Admitter::new(
                    &cfg.admission,
                    source,
                    seed,
                    ex as u16,
                    cfg.ollp_noise_pct,
                );
                crate::exec::ExecThread::new(ex as u16, &db, &cfg, ep.to_cc, ep.fanin, admit)
                    .with_completions(done_tx)
                    .with_log(log)
                    .run(&ctl, &active)
            }));
        }

        EngineHandle {
            ctl,
            submit: Arc::new(SubmitShared::new(ingest)),
            completions,
            stash: Vec::new(),
            workers,
            worker_names,
            n_cc: self.cfg.n_cc,
            measure_from: Instant::now(),
            stats: None,
            fail: None,
            log: self.log.clone(),
            aux: Some(aux),
        }
    }
}

/// Open the configured command log (validated: a non-`Off` mode has a
/// `log_dir`). I/O failure is a loud construction failure, like an
/// invalid config — an engine that silently dropped its durability
/// contract would be worse than one that refuses to start.
fn open_log(cfg: &OrthrusConfig) -> Option<Arc<CommandLog>> {
    if !cfg.durability.is_on() {
        return None;
    }
    let dir = cfg.log_dir.as_deref().expect("validated: log_dir is set");
    let log = CommandLog::open(dir, cfg.durability)
        .unwrap_or_else(|e| panic!("cannot open command log at {}: {e}", dir.display()));
    // Group sync ([`OrthrusConfig::sync_interval`]): appends publish a
    // watermark instead of fsyncing inline; the coordinator thread
    // spawned alongside the workers issues the coalesced fsyncs. The
    // flag is inert outside `log+fsync` mode.
    Some(Arc::new(log.with_group_sync(cfg.sync_interval.is_group())))
}

/// Write checkpoint #0 (the base image every shadow replay grows from)
/// when checkpointing is enabled and the log directory has no valid
/// checkpoint yet. Called at construction, before any worker exists, so
/// the database is quiescent; `db` must correspond to the log's current
/// end position — a pristine database with a fresh log, or a recovered
/// one whose replay consumed the whole valid prefix.
fn ensure_initial_checkpoint(cfg: &OrthrusConfig, db: &Database, log: &Option<Arc<CommandLog>>) {
    let Some(log) = log else { return };
    if cfg.checkpoint_bytes.is_none() {
        return;
    }
    let dir = cfg.log_dir.as_deref().expect("validated: log_dir is set");
    let have = orthrus_storage::checkpoint::load_newest_checkpoint(dir)
        .unwrap_or_else(|e| panic!("cannot scan checkpoints in {}: {e}", dir.display()))
        .is_some();
    if !have {
        // SAFETY: construction time — no engine thread exists yet.
        unsafe { write_initial_checkpoint(dir, db, log.position()) }
            .unwrap_or_else(|e| panic!("cannot write initial checkpoint: {e}"));
    }
}

/// The durability rung-2 companion threads — the group-fsync coordinator
/// and the fuzzy checkpointer — spawned alongside the engine's workers
/// when the configuration asks for them, stopped only **after** every
/// exec worker has joined (the coordinator must keep flushing while they
/// drain their pending-durable queues).
struct AuxThreads {
    stop: Arc<AtomicBool>,
    sync: Option<std::thread::JoinHandle<ThreadStats>>,
    ckpt: Option<std::thread::JoinHandle<()>>,
    /// The companions' sim enrollment names are `{sim_prefix}sync` /
    /// `{sim_prefix}ckpt`; kept so [`Self::finish`] can gate its wait
    /// loop on virtual-time liveness.
    sim_prefix: String,
}

impl AuxThreads {
    fn spawn(cfg: &OrthrusConfig, log: &Option<Arc<CommandLog>>) -> Self {
        let mut aux = AuxThreads {
            stop: Arc::new(AtomicBool::new(false)),
            sync: None,
            ckpt: None,
            sim_prefix: cfg.sim_prefix.clone(),
        };
        let Some(log) = log else { return aux };
        if log.group_sync() {
            let (log, stop) = (Arc::clone(log), Arc::clone(&aux.stop));
            let interval = cfg.sync_interval;
            let sim_prefix = cfg.sim_prefix.clone();
            aux.sync = Some(std::thread::spawn(move || {
                // Same enrollment contract as the workers: a named sim
                // participant under a sim scheduler, a no-op otherwise.
                let _sim = orthrus_common::sim::enroll(&format!("{sim_prefix}sync"));
                run_sync_coordinator(&log, &stop, interval)
            }));
        }
        if let Some(every) = cfg.checkpoint_bytes {
            let (log, stop) = (Arc::clone(log), Arc::clone(&aux.stop));
            let dir = cfg.log_dir.clone().expect("validated: log_dir is set");
            let sim_prefix = cfg.sim_prefix.clone();
            aux.ckpt = Some(std::thread::spawn(move || {
                let _sim = orthrus_common::sim::enroll(&format!("{sim_prefix}ckpt"));
                // Real I/O failures panic inside `run_checkpointer`; an
                // `Err` is an *injected* failpoint — a scripted crash the
                // recovery suite owns. The live engine just stops
                // checkpointing (recovery falls back to the previous
                // checkpoint plus a longer suffix).
                let _ = run_checkpointer(&log, &dir, &stop, every);
            }));
        }
        aux
    }

    /// Stop and join both companions; the coordinator drains every
    /// outstanding append before it exits. Returns the coordinator's
    /// counters for merging into the run totals, or the first panic
    /// message.
    fn finish(mut self) -> Result<ThreadStats, String> {
        self.stop.store(true, Ordering::Release);
        // Under a sim scheduler the caller holds the token, and a bare
        // join would block while the companions sit parked waiting for
        // it — yield through the park point until both have retired (a
        // no-op spin outside the sim). The exit condition must be
        // *virtual*-time liveness: gating on `is_finished` would record
        // however many park steps the companions' real OS unwind takes,
        // which is timing-dependent — nondeterminism.
        let sync_name = format!("{}sync", self.sim_prefix);
        let ckpt_name = format!("{}ckpt", self.sim_prefix);
        while (self.sync.as_ref()).is_some_and(|h| sim::thread_running(h, &sync_name))
            || (self.ckpt.as_ref()).is_some_and(|h| sim::thread_running(h, &ckpt_name))
        {
            if !orthrus_common::sim::on_park() {
                std::thread::yield_now();
            }
        }
        let mut stats = ThreadStats::default();
        if let Some(h) = self.sync.take() {
            match h.join() {
                Ok(s) => stats = s,
                Err(p) => return Err(panic_message(p)),
            }
        }
        if let Some(h) = self.ckpt.take() {
            if let Err(p) = h.join() {
                return Err(panic_message(p));
            }
        }
        Ok(stats)
    }
}

/// Pre-size each CC's table for its share of hot keys; entries are
/// created on demand and kept forever.
const CC_TABLE_CAPACITY: usize = 4096;

/// The wired message mesh, ready to hand to workers.
struct Fabric {
    cc: Vec<CcEndpoints>,
    exec: Vec<ExecEndpoints>,
}

/// Build the full SPSC mesh for `cfg`'s thread shape (see the module
/// docs for the capacity bounds). Shared by the closed-loop [`run`]
/// protocol and service-mode [`start`] — the fabric is identical; only
/// where admission gets its transactions differs.
///
/// [`run`]: OrthrusEngine::run
/// [`start`]: OrthrusEngine::start
// Indexed loops keep the (producer, consumer) ring-matrix wiring
// visibly symmetric; iterator forms obscure which side is which.
#[allow(clippy::needless_range_loop)]
fn build_fabric(cfg: &OrthrusConfig) -> Fabric {
    let c = cfg.n_cc;
    let e = cfg.n_exec;
    let inflight = cfg.max_inflight;
    let exec_cc_cap = cfg.exec_queue_capacity.unwrap_or(2 * inflight + 4);
    let cc_cc_cap = e * inflight + 4;
    let cc_exec_cap = inflight + 4;

    // Build the mesh. Consumer lane order inside each fan-in does not
    // matter (round-robin polling), only completeness does.
    let mut cc_in: Vec<Vec<Consumer<CcRequest>>> = (0..c).map(|_| Vec::new()).collect();
    let mut exec_in: Vec<Vec<Consumer<ExecResponse>>> = (0..e).map(|_| Vec::new()).collect();
    let mut exec_to_cc: Vec<Vec<Producer<CcRequest>>> = (0..e).map(|_| Vec::new()).collect();
    let mut cc_to_cc: Vec<Vec<Producer<CcRequest>>> = (0..c).map(|_| Vec::new()).collect();
    let mut cc_to_exec: Vec<Vec<Producer<ExecResponse>>> = (0..c).map(|_| Vec::new()).collect();

    for ex in 0..e {
        for cc in 0..c {
            let (p, co) = channel_labeled(exec_cc_cap, "exec_cc");
            exec_to_cc[ex].push(p);
            cc_in[cc].push(co);
        }
    }
    for src in 0..c {
        for dst in 0..c {
            let (p, co) = channel_labeled(cc_cc_cap, "cc_cc");
            cc_to_cc[src].push(p);
            cc_in[dst].push(co);
        }
    }
    for cc in 0..c {
        for ex in 0..e {
            let (p, co) = channel_labeled(cc_exec_cap, "cc_exec");
            cc_to_exec[cc].push(p);
            exec_in[ex].push(co);
        }
    }

    Fabric {
        cc: cc_in
            .into_iter()
            .zip(cc_to_cc)
            .zip(cc_to_exec)
            .map(|((lanes, to_cc), to_exec)| CcEndpoints {
                fanin: FanIn::new(lanes),
                to_cc,
                to_exec,
            })
            .collect(),
        exec: exec_in
            .into_iter()
            .zip(exec_to_cc)
            .map(|(lanes, to_cc)| ExecEndpoints {
                fanin: FanIn::new(lanes),
                to_cc,
            })
            .collect(),
    }
}

/// Shared-table mode (Section 3.4): one latched table serves every CC
/// thread.
fn shared_table_for(cfg: &OrthrusConfig) -> Option<Arc<orthrus_lockmgr::LockTable>> {
    match cfg.cc_mode {
        crate::config::CcMode::Partitioned => None,
        crate::config::CcMode::SharedTable => Some(Arc::new(orthrus_lockmgr::LockTable::new(
            cfg.shared_table_buckets,
        ))),
    }
}

/// A running service-mode engine: owns the worker threads, the
/// submission fabric, and the completion rings.
///
/// Lifecycle: [`OrthrusEngine::start`] → [`Self::session`] /
/// [`Self::begin_measurement`] / [`Self::drain_completions`] →
/// [`Self::shutdown`]. Dropping a handle without calling `shutdown`
/// shuts the engine down (discarding the stats), so a panicking client
/// cannot leak spinning engine threads.
pub struct EngineHandle {
    ctl: Arc<RunCtl>,
    submit: Arc<SubmitShared>,
    completions: Vec<Consumer<Completion>>,
    /// Completions drained internally (e.g. while unblocking workers
    /// during shutdown) but not yet handed to the client.
    stash: Vec<Completion>,
    /// CC workers first, then execution workers (join order matters only
    /// for the stats split).
    workers: Vec<std::thread::JoinHandle<ThreadStats>>,
    /// The workers' sim enrollment names, index-aligned with `workers`,
    /// so the shutdown drain can gate on virtual-time liveness.
    worker_names: Vec<String>,
    n_cc: usize,
    measure_from: Instant,
    stats: Option<RunStats>,
    /// Why a previous [`Self::try_shutdown`] failed, if it did (the
    /// workers are joined either way; the handle is spent).
    fail: Option<String>,
    /// The engine's command log, synced once the drain completes so a
    /// clean shutdown is fully replayable even in fsync-free `log` mode.
    log: Option<Arc<CommandLog>>,
    /// The group-fsync coordinator and checkpointer, stopped and joined
    /// only after every worker has (see [`AuxThreads`]).
    aux: Option<AuxThreads>,
}

impl EngineHandle {
    /// A client handle for submitting transactions. Cheap; clone it or
    /// call this again for every client thread.
    pub fn session(&self) -> Session {
        Session::new(Arc::clone(&self.submit))
    }

    /// Submissions accepted engine-wide so far — the conservation ledger:
    /// exactly this many completions will have been delivered once the
    /// engine is shut down and drained.
    pub fn accepted(&self) -> u64 {
        self.submit.accepted()
    }

    /// Open the measurement window: per-thread window counters reset and
    /// throughput/latency accounting runs from here to [`Self::shutdown`].
    /// Without this call, statistics cover the engine's whole lifetime.
    ///
    /// Single-shot: workers latch the transition once, so repeated calls
    /// are ignored (re-arming only `elapsed` would silently inflate
    /// reported throughput).
    pub fn begin_measurement(&mut self) {
        if self.ctl.is_measuring() {
            return;
        }
        self.ctl.begin_measuring();
        self.measure_from = Instant::now();
    }

    /// Move every available completion into `out`; returns how many.
    /// Clients should call this regularly — completion rings are bounded
    /// and apply backpressure to the engine when full.
    pub fn drain_completions(&mut self, out: &mut Vec<Completion>) -> usize {
        let mut n = self.stash.len();
        out.append(&mut self.stash);
        for ring in &mut self.completions {
            n += ring.pop_batch(out);
        }
        n
    }

    /// Shut down: fence out new submissions, drain every accepted ticket
    /// (in-flight *and* still queued in ingest rings — conservation),
    /// stop and join the workers, and return the run's statistics. The
    /// measured window runs from [`Self::begin_measurement`] (or
    /// [`OrthrusEngine::start`] if it was never called) to this call;
    /// commits landing during the shutdown drain complete their tickets
    /// but fall outside the window. Idempotent; drained completions
    /// remain collectable via [`Self::drain_completions`] afterwards.
    pub fn shutdown(&mut self) -> RunStats {
        self.try_shutdown()
            .unwrap_or_else(|e| panic!("engine shutdown failed: {e}"))
    }

    /// [`Self::shutdown`], reporting worker panics and final-sync I/O
    /// failures as typed [`EngineError`]s instead of panicking, so a
    /// client can degrade gracefully when a fault injector (or real
    /// hardware) kills part of the engine. Every worker is joined before
    /// this returns, error or not — nothing leaks.
    pub fn try_shutdown(&mut self) -> Result<RunStats, EngineError> {
        if let Some(stats) = &self.stats {
            return Ok(stats.clone());
        }
        if let Some(msg) = &self.fail {
            return Err(EngineError::Failed(msg.clone()));
        }
        // Fence first: after close() no new ticket can land in any ingest
        // ring, so the execution threads' stop-drain sees a closed set.
        self.submit.close();
        let elapsed = self.measure_from.elapsed();
        self.ctl.request_stop();
        // Workers may be blocked publishing completions; keep draining
        // while they wind down. Gate on virtual-time liveness under a
        // sim scheduler (the pops below are hooked steps — counting
        // them against real OS unwind time would vary run to run).
        while (self.workers.iter().zip(&self.worker_names))
            .any(|(w, name)| sim::thread_running(w, name))
        {
            let mut stash = std::mem::take(&mut self.stash);
            for ring in &mut self.completions {
                ring.pop_batch(&mut stash);
            }
            self.stash = stash;
            std::thread::yield_now();
        }
        let mut panic_msg: Option<String> = None;
        let mut cc_stats: Vec<ThreadStats> = Vec::with_capacity(self.workers.len());
        for w in self.workers.drain(..) {
            match w.join() {
                Ok(stats) => cc_stats.push(stats),
                Err(payload) => {
                    // Keep joining: one dead worker must not leak the
                    // rest. The first panic is the root cause reported.
                    panic_msg.get_or_insert_with(|| panic_message(payload));
                    cc_stats.push(ThreadStats::default());
                }
            }
        }
        // Stop the companions now that every worker is joined — the
        // coordinator's exit condition (stopped ∧ fully synced) makes
        // the pending-durable drain above race-free. Joined even on the
        // worker-panic path so nothing leaks; a coordinator panic (fsync
        // failure) is itself a worker panic.
        let aux_result = match self.aux.take() {
            Some(aux) => aux.finish(),
            None => Ok(ThreadStats::default()),
        };
        if let Some(msg) = panic_msg {
            self.fail = Some(msg.clone());
            return Err(EngineError::WorkerPanicked(msg));
        }
        let coord_stats = match aux_result {
            Ok(s) => s,
            Err(msg) => {
                self.fail = Some(msg.clone());
                return Err(EngineError::WorkerPanicked(msg));
            }
        };
        if let Some(log) = &self.log {
            // Workers are joined: every accepted ticket's record is
            // appended. Push the OS-buffered suffix to stable storage.
            if let Err(e) = log.sync() {
                self.fail = Some(e.to_string());
                return Err(EngineError::LogSync(e));
            }
        }
        let exec_stats = cc_stats.split_off(self.n_cc);
        let mut per_thread = exec_stats;
        // CC threads contribute message counts without inflating the
        // thread count — the same "counted" rule as the timed protocol.
        if let Some(last) = per_thread.last_mut() {
            for cc in &cc_stats {
                last.merge(cc);
            }
            // The coordinator's counters (group fsyncs, coalesced
            // appends) ride the same rule.
            last.merge(&coord_stats);
        }
        let stats = RunStats::collect(&per_thread, elapsed);
        self.stats = Some(stats.clone());
        Ok(stats)
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            // Swallow shutdown errors: a panic during drop would abort,
            // and the drop path has no caller to report to. Workers are
            // joined either way.
            let _ = self.try_shutdown();
        }
    }
}

/// Per-destination staging for a CC thread's outgoing messages. One drain
/// round's forwards and grants are coalesced per destination and flushed
/// as a single slice (one atomic publish) — a CC thread granting several
/// spans to the same execution thread in one round emits one batched
/// flush instead of one ring transaction per grant.
struct CcOutBufs {
    to_cc: Vec<Vec<CcRequest>>,
    to_exec: Vec<Vec<ExecResponse>>,
}

impl CcOutBufs {
    fn new(n_cc: usize, n_exec: usize, flush: usize) -> Self {
        CcOutBufs {
            to_cc: (0..n_cc).map(|_| Vec::with_capacity(flush)).collect(),
            to_exec: (0..n_exec).map(|_| Vec::with_capacity(flush)).collect(),
        }
    }

    /// Stage one routed message; returns immediately (no ring traffic).
    #[inline]
    fn stage(&mut self, msg: OutMsg, stats: &mut ThreadStats) {
        match msg {
            OutMsg::ToCc { cc, req } => self.to_cc[cc as usize].push(req),
            OutMsg::ToExec { exec, resp } => self.to_exec[exec as usize].push(resp),
        }
        stats.messages_sent += 1;
    }

    /// Publish every staged message, one slice per destination. A dead
    /// destination (its thread panicked; see [`RunCtl::is_failed`]) can
    /// never drain its ring again, so a plain blocking `push_slice`
    /// would spin forever once the ring fills — under the simulator's
    /// crash faults that wedged the whole shutdown. On failure the
    /// staged remainder is discarded instead: the engine is already
    /// committed to reporting `WorkerPanicked`, and completions lost
    /// with the dead thread are exactly what the recovery path replays.
    fn flush(&mut self, ep: &mut CcEndpoints, ctl: &RunCtl) {
        fn push_or_discard<T>(ring: &mut Producer<T>, buf: &mut Vec<T>, ctl: &RunCtl) {
            let mut backoff = Backoff::new();
            while !buf.is_empty() {
                if ring.try_push_slice(buf) > 0 {
                    backoff.reset();
                } else if ctl.is_failed() {
                    buf.clear();
                    return;
                } else {
                    backoff.snooze();
                }
            }
        }
        for (cc, buf) in self.to_cc.iter_mut().enumerate() {
            if !buf.is_empty() {
                push_or_discard(&mut ep.to_cc[cc], buf, ctl);
            }
        }
        for (exec, buf) in self.to_exec.iter_mut().enumerate() {
            if !buf.is_empty() {
                push_or_discard(&mut ep.to_exec[exec], buf, ctl);
            }
        }
    }
}

/// The CC thread loop: a tight, latch-free request pump (Section 3.1,
/// "concurrency control threads run a tight loop which sequentially
/// processes requests"), batched: each poll drains up to `flush_threshold`
/// requests from the fan-in in one sweep, and the round's outgoing
/// messages are coalesced per destination and flushed as slices. With
/// `flush_threshold == 1` this degenerates to the seed's
/// one-message-per-atomic-publish pump.
fn run_cc(
    id: u32,
    table_capacity: usize,
    flush_threshold: usize,
    mut ep: CcEndpoints,
    ctl: &RunCtl,
    active_execs: &AtomicUsize,
) -> ThreadStats {
    let mut state = CcState::new(id, table_capacity);
    let mut stats = ThreadStats::default();
    let mut out: Vec<OutMsg> = Vec::with_capacity(16);
    let drain_budget = flush_threshold;
    let mut in_buf: Vec<CcRequest> = Vec::with_capacity(drain_budget);
    let mut out_bufs = CcOutBufs::new(ep.to_cc.len(), ep.to_exec.len(), drain_budget);
    let mut backoff = Backoff::new();
    let mut in_window = false;
    loop {
        if !in_window && ctl.is_measuring() {
            stats.reset_window();
            in_window = true;
        }
        let drained = ep.fanin.drain_round(&mut in_buf, drain_budget);
        if drained > 0 {
            for req in in_buf.drain(..) {
                state.handle(req, &mut out);
                for msg in out.drain(..) {
                    out_bufs.stage(msg, &mut stats);
                }
            }
            out_bufs.flush(&mut ep, ctl);
            backoff.reset();
        } else if ctl.is_stopped() && active_execs.load(std::sync::atomic::Ordering::Acquire) == 0 {
            // Every exec flushed its final sends before decrementing, and
            // forwards only exist while acquires are unresolved — one last
            // sweep and we are done.
            if ep.fanin.is_empty() {
                break;
            }
        } else {
            backoff.snooze();
        }
    }
    // CC threads contribute only message counts to the merged stats; their
    // CPU time is not part of the Figure-10 execution-thread breakdown.
    stats.execution_ns = 0;
    stats.locking_ns = 0;
    stats.waiting_ns = 0;
    stats
}

/// The Section-3.4 CC loop: pump requests against the shared latched
/// table, re-polling parked acquisitions each iteration (grants arrive
/// from *other* CC threads' releases through the shared table).
fn run_cc_shared(
    table: Arc<orthrus_lockmgr::LockTable>,
    flush_threshold: usize,
    mut ep: CcEndpoints,
    ctl: &RunCtl,
    active_execs: &AtomicUsize,
) -> ThreadStats {
    let mut state = crate::shared::SharedCcState::new(table);
    let mut stats = ThreadStats::default();
    let mut out: Vec<OutMsg> = Vec::with_capacity(16);
    let drain_budget = flush_threshold;
    let mut in_buf: Vec<CcRequest> = Vec::with_capacity(drain_budget);
    let mut out_bufs = CcOutBufs::new(ep.to_cc.len(), ep.to_exec.len(), drain_budget);
    let mut backoff = Backoff::new();
    let mut in_window = false;
    loop {
        if !in_window && ctl.is_measuring() {
            stats.reset_window();
            in_window = true;
        }
        let mut progress = false;
        if ep.fanin.drain_round(&mut in_buf, drain_budget) > 0 {
            for req in in_buf.drain(..) {
                state.handle(req, &mut out);
            }
            progress = true;
        }
        progress |= state.poll_pending(&mut out) > 0;
        for msg in out.drain(..) {
            out_bufs.stage(msg, &mut stats);
        }
        out_bufs.flush(&mut ep, ctl);
        if progress {
            backoff.reset();
        } else if ctl.is_stopped()
            && active_execs.load(std::sync::atomic::Ordering::Acquire) == 0
            // A dead exec thread never releases the locks its in-flight
            // transactions hold, so its peers' parked acquisitions can
            // never be granted — on failure, abandon them instead of
            // polling forever.
            && (state.pending_count() == 0 || ctl.is_failed())
        {
            if ep.fanin.is_empty() {
                break;
            }
        } else {
            backoff.snooze();
        }
    }
    stats.execution_ns = 0;
    stats.locking_ns = 0;
    stats.waiting_ns = 0;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_common::runtime::RunParams;
    use orthrus_storage::tpcc::{TpccConfig, TpccDb};
    use orthrus_storage::{PartitionedTable, Table};
    use orthrus_workload::{MicroSpec, PartitionConstraint, TpccSpec};

    use crate::config::{CcAssignment, DEFAULT_FLUSH_THRESHOLD};

    fn quick() -> RunParams {
        RunParams::quick(0) // threads field unused by OrthrusEngine
    }

    #[test]
    fn single_cc_uniform_rmw_exact_counts() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(128, 64)));
        let spec = Spec::Micro(MicroSpec::uniform(128, 4, false));
        let cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0, "no progress");
        assert_eq!(stats.totals.aborts(), 0);
        let total: u64 = (0..128).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn multi_cc_contended_rmw_exact_counts() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        // 2 hot of 8, 4 ops total: heavy conflicts across 4 CC threads.
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let cfg = OrthrusConfig::with_threads(4, 4, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn read_only_workload_counts_nothing_but_commits() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, true));
        let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        assert_eq!(stats.totals.aborts(), 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, 0, "read-only must not write");
    }

    #[test]
    fn exact_partition_spans_drive_multiple_ccs() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(256, 64)));
        let spec = Spec::Micro(
            MicroSpec::uniform(256, 8, false)
                .with_constraint(PartitionConstraint::Exact { count: 4, of: 4 }),
        );
        let cfg = OrthrusConfig::with_threads(4, 2, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..256).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 8);
        // Message economics with forwarding: Ncc+1 acquire-path messages +
        // Ncc releases per txn = 2·Ncc + 1 = 9 per commit.
        let per_commit = stats.totals.messages_sent as f64 / stats.totals.committed as f64;
        assert!(
            (8.0..=10.5).contains(&per_commit),
            "messages/commit {per_commit:.2}, expected ≈9"
        );
    }

    #[test]
    fn forwarding_saves_messages() {
        let _serial = crate::test_serial();
        let mk = |forwarding: bool| {
            let db = Arc::new(Database::Flat(Table::new(256, 64)));
            let spec = Spec::Micro(
                MicroSpec::uniform(256, 8, false)
                    .with_constraint(PartitionConstraint::Exact { count: 4, of: 4 }),
            );
            let mut cfg = OrthrusConfig::with_threads(4, 2, CcAssignment::KeyModulo);
            cfg.forwarding = forwarding;
            let engine = OrthrusEngine::new(db, spec, cfg);
            let stats = engine.run(&quick());
            stats.totals.messages_sent as f64 / stats.totals.committed.max(1) as f64
        };
        let with = mk(true); // Ncc+1 + Ncc releases ≈ 9
        let without = mk(false); // 2·Ncc + Ncc releases ≈ 12
        assert!(
            without > with + 1.5,
            "forwarding must cut messages: with={with:.2} without={without:.2}"
        );
    }

    #[test]
    fn split_orthrus_runs_on_partitioned_database() {
        let _serial = crate::test_serial();
        // SPLIT ORTHRUS (Section 4.3): index partitions aligned with CC
        // partitions (both key % 4).
        let db = Arc::new(Database::Partitioned(PartitionedTable::new(256, 64, 4)));
        let spec = Spec::Micro(
            MicroSpec::uniform(256, 4, false)
                .with_constraint(PartitionConstraint::Exact { count: 2, of: 4 }),
        );
        let cfg = OrthrusConfig::with_threads(4, 2, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..256).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn tpcc_money_conservation_under_orthrus() {
        let _serial = crate::test_serial();
        let cfg_t = TpccConfig::tiny(4);
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 21)));
        let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));
        let cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::Warehouse);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let t = db.tpcc();
        let w_delta: u64 = (0..t.warehouses.len())
            .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        let d_delta: u64 = (0..t.districts.len())
            .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
            .sum();
        assert_eq!(w_delta, d_delta);
        let hist_cnt: u64 = (0..t.districts.len())
            .map(|d| unsafe { t.districts.read_with(d, |r| r.history_ctr as u64) })
            .sum();
        let pay_cnt: u64 = (0..t.customers.len())
            .map(|c| unsafe { t.customers.read_with(c, |r| (r.payment_cnt - 1) as u64) })
            .sum();
        assert_eq!(hist_cnt, pay_cnt);
    }

    #[test]
    fn tpcc_with_ollp_noise_recovers() {
        let _serial = crate::test_serial();
        let cfg_t = TpccConfig::tiny(2);
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 33)));
        let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
        cfg.ollp_noise_pct = 50;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        assert!(stats.totals.aborts_ollp > 0, "noise must hit the OLLP path");
        // Conservation must survive the abort/retry churn.
        let t = db.tpcc();
        let w_delta: u64 = (0..t.warehouses.len())
            .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        let d_delta: u64 = (0..t.districts.len())
            .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
            .sum();
        assert_eq!(w_delta, d_delta);
    }

    #[test]
    fn shared_table_mode_exact_counts() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        // Hot contention, multi-key plans: the shared table must still
        // serialize exactly.
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::KeyModulo);
        cfg.cc_mode = crate::config::CcMode::SharedTable;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0, "shared mode made no progress");
        assert_eq!(stats.totals.aborts(), 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn shared_table_mode_read_only() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, true));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
        cfg.cc_mode = crate::config::CcMode::SharedTable;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn flush_threshold_one_reproduces_seed_semantics() {
        let _serial = crate::test_serial();
        // flush_threshold = 1: every send publishes immediately, exactly
        // the pre-batching fabric. The serializability witness and the
        // per-commit message economics must both hold unchanged.
        let db = Arc::new(Database::Flat(Table::new(256, 64)));
        let spec = Spec::Micro(
            MicroSpec::uniform(256, 8, false)
                .with_constraint(PartitionConstraint::Exact { count: 4, of: 4 }),
        );
        let mut cfg = OrthrusConfig::with_threads(4, 2, CcAssignment::KeyModulo);
        cfg.flush_threshold = 1;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..256).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 8);
        let per_commit = stats.totals.messages_sent as f64 / stats.totals.committed as f64;
        assert!(
            (8.0..=10.5).contains(&per_commit),
            "messages/commit {per_commit:.2}, expected ≈9"
        );
    }

    #[test]
    fn deep_batching_keeps_exact_counts() {
        let _serial = crate::test_serial();
        // A flush threshold far above the in-flight cap: flushes happen
        // only at quantum boundaries. Exactness must be unaffected.
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(4, 4, CcAssignment::KeyModulo);
        cfg.flush_threshold = 64;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn deep_batching_with_tiny_rings_still_completes() {
        let _serial = crate::test_serial();
        // Batches larger than the ring: push_slice must publish partial
        // prefixes under backpressure without losing order or messages.
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
        cfg.flush_threshold = 32;
        cfg.exec_queue_capacity = Some(2);
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn shared_table_mode_respects_flush_threshold() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::KeyModulo);
        cfg.cc_mode = crate::config::CcMode::SharedTable;
        cfg.flush_threshold = 8;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn conflict_batch_admission_keeps_exact_counts() {
        let _serial = crate::test_serial();
        // Heavy skew on a tiny hot set: conflict-class batching reorders
        // admission, but serializability (exact counter sums) must hold.
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 4, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::KeyModulo);
        cfg.admission = crate::admit::AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 8,
        };
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0, "batched admission stalled");
        assert_eq!(stats.totals.aborts(), 0);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, stats.totals.committed_all * 4);
    }

    #[test]
    fn conflict_batch_admission_runs_tpcc_with_ollp() {
        let _serial = crate::test_serial();
        // The plan produced at admission must survive the OLLP abort/retry
        // path: conservation holds across re-planned retries.
        let cfg_t = TpccConfig::tiny(2);
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 11)));
        let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
        cfg.admission = crate::admit::AdmissionPolicy::conflict_batch();
        cfg.ollp_noise_pct = 50;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        assert!(stats.totals.aborts_ollp > 0, "noise must hit the OLLP path");
        let t = db.tpcc();
        let w_delta: u64 = (0..t.warehouses.len())
            .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        let d_delta: u64 = (0..t.districts.len())
            .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
            .sum();
        assert_eq!(w_delta, d_delta);
    }

    #[test]
    fn adaptive_admission_keeps_exact_counts_on_both_fabrics() {
        let _serial = crate::test_serial();
        // A hot workload with a promotion-friendly controller (tiny epoch,
        // K = 1, low threshold): policy switches happen live inside the
        // run, and serializability (exact counter sums — every admitted
        // transaction commits exactly once, none lost or duplicated
        // across a switch) must hold on the batched fabric and on the
        // seed's per-message fabric alike.
        for flush_threshold in [DEFAULT_FLUSH_THRESHOLD, 1] {
            let db = Arc::new(Database::Flat(Table::new(64, 64)));
            let spec = Spec::Micro(MicroSpec::hot_cold(64, 4, 2, 4, false));
            let mut cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::KeyModulo);
            cfg.flush_threshold = flush_threshold;
            cfg.admission = crate::admit::AdmissionPolicy::Adaptive {
                classes: 4,
                max_batch: 8,
                threshold_pct: 5,
                hysteresis: 1,
                epoch: 32,
            };
            let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
            let stats = engine.run(&quick());
            assert!(
                stats.totals.committed > 0,
                "flush {flush_threshold}: adaptive admission stalled"
            );
            assert_eq!(stats.totals.aborts(), 0);
            let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
            assert_eq!(
                total,
                stats.totals.committed_all * 4,
                "flush {flush_threshold}: counter sums diverged"
            );
            assert!(
                stats.totals.lock_waits > 0,
                "flush {flush_threshold}: hot workload must report deferrals"
            );
        }
    }

    #[test]
    fn adaptive_admission_runs_tpcc_with_ollp() {
        let _serial = crate::test_serial();
        // Adaptive admission must survive the OLLP abort/retry path in
        // both of its modes: conservation holds across re-planned retries
        // and any live policy switches.
        let cfg_t = TpccConfig::tiny(2);
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 17)));
        let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
        cfg.admission = crate::admit::AdmissionPolicy::Adaptive {
            classes: 4,
            max_batch: 8,
            threshold_pct: 5,
            hysteresis: 1,
            epoch: 32,
        };
        cfg.ollp_noise_pct = 50;
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg);
        let stats = engine.run(&quick());
        assert!(stats.totals.committed > 0);
        assert!(stats.totals.aborts_ollp > 0, "noise must hit the OLLP path");
        let t = db.tpcc();
        let w_delta: u64 = (0..t.warehouses.len())
            .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        let d_delta: u64 = (0..t.districts.len())
            .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
            .sum();
        assert_eq!(w_delta, d_delta);
    }

    #[test]
    #[should_panic(expected = "invalid OrthrusConfig")]
    fn engine_rejects_adaptive_epoch_of_one() {
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let spec = Spec::Micro(MicroSpec::uniform(16, 2, false));
        let mut cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        cfg.admission = crate::admit::AdmissionPolicy::Adaptive {
            classes: 4,
            max_batch: 8,
            threshold_pct: 40,
            hysteresis: 2,
            epoch: 1,
        };
        let _ = OrthrusEngine::new(db, spec, cfg);
    }

    #[test]
    #[should_panic(expected = "invalid OrthrusConfig")]
    fn engine_rejects_zero_inflight_cap() {
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let spec = Spec::Micro(MicroSpec::uniform(16, 2, false));
        let mut cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        cfg.max_inflight = 0;
        let _ = OrthrusEngine::new(db, spec, cfg);
    }

    #[test]
    #[should_panic(expected = "invalid OrthrusConfig")]
    fn engine_rejects_zero_conflict_classes() {
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let spec = Spec::Micro(MicroSpec::uniform(16, 2, false));
        let mut cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        cfg.admission = crate::admit::AdmissionPolicy::ConflictBatch {
            classes: 0,
            batch: 1,
        };
        let _ = OrthrusEngine::new(db, spec, cfg);
    }

    // ---- Service mode (open-loop sessions) ---------------------------

    use crate::source::Completion;
    use orthrus_workload::Gen;

    /// Drive `n` submissions through a session (blocking on
    /// backpressure), draining completions as they arrive, then shut
    /// down and drain the tail. Returns (completions, stats).
    fn drive_service(
        engine: &OrthrusEngine,
        gen: &mut Gen,
        n: u64,
    ) -> (Vec<Completion>, orthrus_common::RunStats) {
        let mut handle = engine.start(7);
        handle.begin_measurement();
        let session = handle.session();
        let mut done = Vec::new();
        for _ in 0..n {
            session
                .submit(gen.next_program())
                .expect("engine is accepting");
            handle.drain_completions(&mut done);
        }
        let stats = handle.shutdown();
        handle.drain_completions(&mut done);
        assert_eq!(handle.accepted(), n);
        (done, stats)
    }

    /// Every accepted ticket completes exactly once, across all three
    /// admission policies, with the serializability witness intact —
    /// including tickets still queued in ingest rings at shutdown
    /// (`submit` never waits for completions, so at `shutdown()` up to
    /// ring-capacity submissions are still undrained in-flight work).
    #[test]
    fn service_mode_conserves_tickets_under_every_policy() {
        let _serial = crate::test_serial();
        for admission in [
            crate::admit::AdmissionPolicy::Fifo,
            crate::admit::AdmissionPolicy::ConflictBatch {
                classes: 4,
                batch: 8,
            },
            crate::admit::AdmissionPolicy::Adaptive {
                classes: 4,
                max_batch: 8,
                threshold_pct: 5,
                hysteresis: 1,
                epoch: 32,
            },
        ] {
            let db = Arc::new(Database::Flat(Table::new(64, 64)));
            // Hot keys: conflict-class routing and fusing both engage.
            let spec = MicroSpec::hot_cold(64, 8, 2, 4, false);
            let mut cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::KeyModulo);
            cfg.admission = admission.clone();
            cfg.ingest_capacity = 32;
            let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
            let n = 600;
            let mut gen = Spec::Micro(spec).generator(11, 0);
            let (done, stats) = drive_service(&engine, &mut gen, n);
            assert_eq!(
                done.len() as u64,
                n,
                "{admission}: every ticket must complete exactly once"
            );
            let mut tickets: Vec<u64> = done.iter().map(|c| c.ticket.0).collect();
            tickets.sort_unstable();
            tickets.dedup();
            assert_eq!(
                tickets.len() as u64,
                n,
                "{admission}: tickets must be distinct"
            );
            assert_eq!(stats.totals.committed_all, n, "{admission}");
            // The logical locks serialized every RMW exactly once.
            let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
            assert_eq!(total, n * 4, "{admission}: counter sums diverged");
            // Submit→commit latency was recorded for every in-window
            // commit; the shutdown drain tail falls outside the window.
            let recorded = stats.totals.latency.count();
            assert!(
                0 < recorded && recorded <= n,
                "{admission}: latency samples {recorded} of {n} commits"
            );
            assert!(stats.per_thread_latency.len() >= 3, "{admission}");
        }
    }

    /// Shutdown with the ingest rings still full: the fence refuses new
    /// work, but everything already accepted drains to completion.
    #[test]
    fn service_shutdown_drains_queued_submissions() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let mut cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo);
        cfg.ingest_capacity = 64;
        let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
        let mut handle = engine.start(3);
        let session = handle.session();
        let mut gen = Spec::Micro(MicroSpec::uniform(64, 4, false)).generator(5, 0);
        // Burst without draining a single completion.
        let n = 200u64;
        for _ in 0..n {
            session.submit(gen.next_program()).expect("accepting");
        }
        let accepted = handle.accepted();
        assert_eq!(accepted, n);
        let stats = handle.shutdown();
        // Post-shutdown submission is fenced out, not lost silently.
        assert!(matches!(
            session.try_submit(gen.next_program()),
            Err(crate::session::TrySubmitError::Shutdown(_))
        ));
        let mut done = Vec::new();
        handle.drain_completions(&mut done);
        assert_eq!(done.len() as u64, n, "shutdown must drain, not drop");
        assert_eq!(stats.totals.committed_all, n);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, n * 4);
    }

    /// Regression (review finding): an admission-queue window far deeper
    /// than the ingest ring. A refill can pull `classes × batch` ticketed
    /// transactions out of a tiny ring while the client keeps it full and
    /// then blocks in `submit`; the completion rings must absorb the
    /// whole backlog (ingest + window + in-flight, doubled for drain
    /// lag) or the engine wedges against the blocked client.
    #[test]
    fn service_mode_survives_admission_window_deeper_than_ingest_ring() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = MicroSpec::hot_cold(64, 4, 2, 4, false);
        let mut cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo);
        cfg.admission = crate::admit::AdmissionPolicy::ConflictBatch {
            classes: 16,
            batch: 8, // window 128 ≫ ingest ring
        };
        cfg.ingest_capacity = 8;
        let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
        let n = 500;
        let mut gen = Spec::Micro(spec).generator(19, 0);
        let (done, stats) = drive_service(&engine, &mut gen, n);
        assert_eq!(done.len() as u64, n, "deep-window backlog must drain");
        assert_eq!(stats.totals.committed_all, n);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, n * 4);
    }

    /// Regression (review finding): a hot-key burst routes every
    /// submission to ONE execution thread's lane, and the client drains
    /// nothing until shutdown — far more undrained completions than the
    /// completion ring holds. The engine must park the overflow and stay
    /// live (a blocking completion push would wedge it against the
    /// client stuck in `submit`), and shutdown must deliver every
    /// ticket.
    #[test]
    fn service_mode_survives_hot_key_burst_without_draining() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let mut cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo);
        cfg.ingest_capacity = 16; // completion fast path: 2·(16+0+16) = 64
        let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
        let mut handle = engine.start(23);
        let session = handle.session();
        // One hot key → one lane; 300 undrained completions ≫ 64.
        let n = 300u64;
        for i in 0..n {
            session
                .submit(orthrus_txn::Program::Rmw {
                    keys: vec![7, 40 + i % 8],
                })
                .expect("accepting");
        }
        let stats = handle.shutdown();
        let mut done = Vec::new();
        handle.drain_completions(&mut done);
        assert_eq!(done.len() as u64, n, "overflowed completions delivered");
        assert_eq!(stats.totals.committed_all, n);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, n * 2);
    }

    /// Service mode on the shared-table CC architecture: the source seam
    /// is orthogonal to the CC mode.
    #[test]
    fn service_mode_works_on_shared_table_cc() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
        cfg.cc_mode = crate::config::CcMode::SharedTable;
        let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
        let mut gen = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false)).generator(9, 0);
        let n = 300;
        let (done, stats) = drive_service(&engine, &mut gen, n);
        assert_eq!(done.len() as u64, n);
        assert_eq!(stats.totals.committed_all, n);
        let total: u64 = (0..64).map(|k| unsafe { db.read_counter(k) }).sum();
        assert_eq!(total, n * 4);
    }

    /// Ticket conservation through the OLLP abort/retry path: a retried
    /// transaction keeps its ticket and completes once.
    #[test]
    fn service_mode_tickets_survive_ollp_retries() {
        let _serial = crate::test_serial();
        let cfg_t = TpccConfig::tiny(2);
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 27)));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
        cfg.ollp_noise_pct = 50;
        let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
        let mut gen = Spec::Tpcc(TpccSpec::paper_mix(cfg_t)).generator(13, 0);
        let n = 400;
        let (done, stats) = drive_service(&engine, &mut gen, n);
        assert_eq!(
            done.len() as u64,
            n,
            "retried tickets must not fork or drop"
        );
        assert!(stats.totals.aborts_ollp > 0, "noise must hit the OLLP path");
        let t = db.tpcc();
        let w_delta: u64 = (0..t.warehouses.len())
            .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        let d_delta: u64 = (0..t.districts.len())
            .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
            .sum();
        assert_eq!(w_delta, d_delta);
    }

    #[test]
    fn dropping_the_handle_shuts_the_engine_down() {
        let _serial = crate::test_serial();
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::service(db, cfg);
        let handle = engine.start(1);
        let session = handle.session();
        session
            .submit(orthrus_txn::Program::Rmw { keys: vec![3] })
            .unwrap();
        drop(handle); // must join the workers, not leak them spinning
        assert!(matches!(
            session.try_submit(orthrus_txn::Program::Rmw { keys: vec![3] }),
            Err(crate::session::TrySubmitError::Shutdown(_))
        ));
    }

    #[test]
    #[should_panic(expected = "does not match the engine's")]
    fn run_rejects_mismatched_thread_count() {
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let spec = Spec::Micro(MicroSpec::uniform(16, 2, false));
        let cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(db, spec, cfg);
        let _ = engine.run(&RunParams::quick(7)); // engine runs 3 threads
    }

    #[test]
    #[should_panic(expected = "needs a workload spec")]
    fn run_rejects_service_engines() {
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        let _ = OrthrusEngine::service(db, cfg).run(&RunParams::quick(0));
    }

    #[test]
    #[should_panic(expected = "invalid OrthrusConfig")]
    fn service_rejects_zero_ingest_capacity() {
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let mut cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        cfg.ingest_capacity = 0;
        let _ = OrthrusEngine::service(db, cfg);
    }

    // ---- Durability (command log + replay) ---------------------------

    use orthrus_common::TempDir;
    use orthrus_durability::DurabilityMode;

    /// Quiesced per-key counters of a flat database.
    fn counters(db: &Database, n: u64) -> Vec<u64> {
        // SAFETY: the engine is shut down; no thread touches the table.
        (0..n).map(|k| unsafe { db.read_counter(k) }).collect()
    }

    /// Closed-loop run with command logging: the log covers every commit
    /// (lifetime count, group-commit records ≤ commits), and replaying it
    /// into a fresh database reproduces the live table state exactly.
    #[test]
    fn closed_loop_log_replays_to_identical_state() {
        let _serial = crate::test_serial();
        let scratch = TempDir::new("engine-log");
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::KeyModulo)
            .with_durability(DurabilityMode::Log, scratch.path());
        cfg.admission = crate::admit::AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 8,
        };
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg.clone());
        let stats = engine.run(&quick());
        assert!(stats.totals.committed_all > 0);
        assert!(stats.totals.log_records > 0, "commits must be logged");
        assert!(
            stats.totals.log_records <= stats.totals.committed_all,
            "group commit: at most one record per commit"
        );
        assert!(stats.totals.log_bytes > 0);
        assert_eq!(stats.totals.log_flushes, 0, "`log` mode must not fsync");
        drop(engine); // release the writer before recovery repairs the log

        let fresh = Arc::new(Database::Flat(Table::new(64, 64)));
        let (recovered, report) = OrthrusEngine::recover(Arc::clone(&fresh), cfg);
        assert_eq!(report.txns, stats.totals.committed_all);
        // The stat counters are *windowed* (reset at measurement start,
        // like `committed`); the log itself covers the whole lifetime.
        assert!(report.records >= stats.totals.log_records);
        assert_eq!(report.torn_bytes, 0, "clean shutdown leaves no tear");
        assert!(
            report.tickets.is_empty(),
            "synthetic commits are unticketed"
        );
        assert_eq!(counters(&fresh, 64), counters(&db, 64));
        drop(recovered);
    }

    /// `log+fsync` with per-run sync (durability rung 1): completions
    /// release only after the inline fsync, and the fsync count equals
    /// the record count (one group-commit flush per fused run).
    #[test]
    fn fsync_mode_flushes_once_per_record() {
        let _serial = crate::test_serial();
        let scratch = TempDir::new("engine-fsync");
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let mut cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo)
            .with_durability(DurabilityMode::LogFsync, scratch.path());
        cfg.sync_interval = orthrus_durability::SyncInterval::PerRun;
        let stats = OrthrusEngine::new(Arc::clone(&db), spec, cfg).run(&quick());
        assert!(stats.totals.committed_all > 0);
        assert_eq!(stats.totals.log_flushes, stats.totals.log_records);
        assert!(stats.totals.log_records > 0);
        assert_eq!(stats.totals.log_group_syncs, 0, "no coordinator spawned");
    }

    /// `log+fsync` with the group-sync coordinator (durability rung 2,
    /// the default): exec threads only publish watermarks, the
    /// coordinator's fsyncs cover every appended record before its
    /// completion releases, and replay still reproduces the state.
    #[test]
    fn group_sync_covers_every_record_and_recovers() {
        let _serial = crate::test_serial();
        let scratch = TempDir::new("engine-groupsync");
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false));
        let cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo)
            .with_durability(DurabilityMode::LogFsync, scratch.path());
        let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg.clone());
        let stats = engine.run(&quick());
        assert!(stats.totals.committed_all > 0);
        assert!(stats.totals.log_records > 0);
        assert!(stats.totals.log_group_syncs > 0, "coordinator must flush");
        // Every record this closed-loop run appended was covered by a
        // coordinator fsync before its completion released (the
        // coordinator's counters are lifetime-scoped, so they dominate
        // the windowed record count), and in group mode the only fsyncs
        // are the coordinator's.
        assert!(stats.totals.log_synced_appends >= stats.totals.log_records);
        assert_eq!(stats.totals.log_flushes, stats.totals.log_group_syncs);
        assert!(stats.totals.log_fsync_wait.count() > 0, "waits recorded");
        drop(engine);

        let fresh = Arc::new(Database::Flat(Table::new(64, 64)));
        let (recovered, report) = OrthrusEngine::recover(Arc::clone(&fresh), cfg);
        assert_eq!(report.txns, stats.totals.committed_all);
        assert_eq!(report.torn_bytes, 0, "clean stop leaves no tear");
        assert_eq!(counters(&fresh, 64), counters(&db, 64));
        drop(recovered);
    }

    /// The engine-level checkpoint loop: a service run with a tiny
    /// checkpoint trigger writes checkpoints behind the workers' backs,
    /// truncates old segments, and recovery replays checkpoint + suffix
    /// (parallel) to the exact live state with every ticket conserved.
    #[test]
    fn service_checkpoints_truncate_and_recover_in_parallel() {
        let _serial = crate::test_serial();
        let scratch = TempDir::new("engine-ckpt");
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let mut cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo)
            .with_durability(DurabilityMode::Log, scratch.path());
        cfg.checkpoint_bytes = Some(256); // aggressive: many checkpoints
        cfg.replay_threads = 3;
        let engine = OrthrusEngine::service(Arc::clone(&db), cfg.clone());
        let mut gen = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false)).generator(9, 0);
        let n = 800u64;
        let (done, _stats) = drive_service(&engine, &mut gen, n);
        assert_eq!(done.len() as u64, n);
        drop(engine);

        let newest = orthrus_storage::checkpoint::load_newest_checkpoint(scratch.path())
            .unwrap()
            .expect("a valid checkpoint survives");
        assert!(
            newest.index > 0,
            "checkpointer advanced past the base image"
        );

        let fresh = Arc::new(Database::Flat(Table::new(64, 64)));
        let (recovered, report) = OrthrusEngine::recover(Arc::clone(&fresh), cfg);
        assert!(
            report.checkpoint.is_some(),
            "recovery starts at a checkpoint"
        );
        assert!(
            (report.txns as usize) < n as usize,
            "only the suffix replays ({} of {n})",
            report.txns
        );
        assert_eq!(counters(&fresh, 64), counters(&db, 64));
        drop(recovered);
    }

    /// Rung-2 equivalence across admission policies: each policy shapes
    /// fused runs — and therefore log records — differently, but
    /// recovering from the newest checkpoint + suffix must be
    /// bit-identical (snapshot-codec bytes) to replaying the same log
    /// from scratch, and the full replay must carry every accepted
    /// ticket exactly once (the conservation audit).
    #[test]
    fn checkpoint_recovery_matches_full_log_for_every_admission_policy() {
        let _serial = crate::test_serial();
        for admission in [
            crate::admit::AdmissionPolicy::Fifo,
            crate::admit::AdmissionPolicy::conflict_batch(),
            crate::admit::AdmissionPolicy::adaptive(),
        ] {
            let scratch = TempDir::new("engine-ckpt-pol");
            let db = Arc::new(Database::Flat(Table::new(64, 64)));
            let mut cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo)
                .with_durability(DurabilityMode::Log, scratch.path());
            cfg.admission = admission.clone();
            cfg.checkpoint_bytes = Some(256);
            let engine = OrthrusEngine::service(Arc::clone(&db), cfg.clone());
            let mut gen = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false)).generator(11, 0);
            let n = 800u64;
            let (done, _stats) = drive_service(&engine, &mut gen, n);
            assert_eq!(done.len() as u64, n, "{admission:?}");
            drop(engine);

            // Mirror only the log segments: the mirror has no
            // checkpoints, so it must replay the whole history.
            let mirror = TempDir::new("engine-ckpt-mirror");
            for entry in std::fs::read_dir(scratch.path()).unwrap() {
                let p = entry.unwrap().path();
                let name = p.file_name().unwrap().to_str().unwrap().to_string();
                if name.starts_with("seg-") {
                    std::fs::copy(&p, mirror.path().join(&name)).unwrap();
                }
            }

            let via_ckpt = Database::Flat(Table::new(64, 64));
            let full = Database::Flat(Table::new(64, 64));
            let ra = orthrus_durability::recover_with(&via_ckpt, scratch.path(), 2).unwrap();
            let rb = orthrus_durability::recover_with(&full, mirror.path(), 2).unwrap();
            assert!(ra.checkpoint.is_some(), "{admission:?}");
            assert!(rb.checkpoint.is_none(), "{admission:?}");
            // SAFETY: both databases are quiesced (recovery returned).
            let (a, b) = unsafe {
                (
                    orthrus_durability::snapshot::serialize_db(&via_ckpt),
                    orthrus_durability::snapshot::serialize_db(&full),
                )
            };
            assert_eq!(a, b, "{admission:?}: ckpt+suffix state != full-log state");
            let mut all = rb.tickets.clone();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "{admission:?}");
            assert!(ra.tickets.len() <= rb.tickets.len(), "{admission:?}");
            assert_eq!(
                ra.tickets[..],
                rb.tickets[rb.tickets.len() - ra.tickets.len()..],
                "{admission:?}: suffix mismatch"
            );
        }
    }

    /// Shutdown + recovery interaction (the drained-dry contract): a
    /// service engine accepts a burst — including submissions still
    /// queued in ingest rings when shutdown begins — drains everything,
    /// and `recover` on the resulting log reproduces the drained state
    /// with every accepted ticket replayed exactly once. Work fenced out
    /// by the shutdown (refused tickets) is excluded from the log.
    #[test]
    fn shutdown_drains_dry_then_recover_reproduces_state() {
        let _serial = crate::test_serial();
        for admission in [
            crate::admit::AdmissionPolicy::Fifo,
            crate::admit::AdmissionPolicy::ConflictBatch {
                classes: 4,
                batch: 8,
            },
        ] {
            let scratch = TempDir::new("engine-drain");
            let db = Arc::new(Database::Flat(Table::new(64, 64)));
            let mut cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo)
                .with_durability(DurabilityMode::Log, scratch.path());
            cfg.admission = admission.clone();
            cfg.ingest_capacity = 64;
            let engine = OrthrusEngine::service(Arc::clone(&db), cfg.clone());
            let mut handle = engine.start(3);
            let session = handle.session();
            let mut gen = Spec::Micro(MicroSpec::hot_cold(64, 8, 2, 4, false)).generator(5, 0);
            // Burst without draining: at shutdown() up to ring-capacity
            // submissions are still queued backlog.
            let n = 200u64;
            for _ in 0..n {
                session.submit(gen.next_program()).expect("accepting");
            }
            let stats = handle.shutdown();
            assert_eq!(stats.totals.committed_all, n, "{admission}: drained dry");
            // Post-fence work is refused — and must not leak into the log.
            assert!(session.try_submit(gen.next_program()).is_err());
            let mut done = Vec::new();
            handle.drain_completions(&mut done);
            assert_eq!(done.len() as u64, n);
            drop(handle);
            drop(engine);

            let fresh = Arc::new(Database::Flat(Table::new(64, 64)));
            let (recovered, report) = OrthrusEngine::recover(Arc::clone(&fresh), cfg);
            assert_eq!(report.txns, n, "{admission}: every ticket replayed");
            // Exactly-once, no loss: replayed tickets == completed tickets.
            let mut replayed = report.tickets.clone();
            replayed.sort_unstable();
            let mut completed: Vec<u64> = done.iter().map(|c| c.ticket.0).collect();
            completed.sort_unstable();
            assert_eq!(replayed, completed, "{admission}");
            assert_eq!(counters(&fresh, 64), counters(&db, 64), "{admission}");

            // The recovered engine keeps serving — and keeps logging.
            let mut handle = recovered.start(4);
            let session = handle.session();
            for _ in 0..10 {
                session.submit(gen.next_program()).expect("accepting");
            }
            let more = handle.shutdown();
            assert_eq!(more.totals.committed_all, 10, "{admission}");
        }
    }

    /// Ticket conservation through OLLP retries under logging: a retried
    /// transaction is logged once (at its commit), and replay reproduces
    /// the TPC-C money invariants of the live run.
    #[test]
    fn tpcc_service_with_ollp_noise_recovers_exactly() {
        let _serial = crate::test_serial();
        let scratch = TempDir::new("engine-tpcc");
        let cfg_t = TpccConfig::tiny(2);
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 27)));
        let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse)
            .with_durability(DurabilityMode::Log, scratch.path());
        cfg.ollp_noise_pct = 50;
        let engine = OrthrusEngine::service(Arc::clone(&db), cfg.clone());
        let mut gen = Spec::Tpcc(TpccSpec::paper_mix(cfg_t)).generator(13, 0);
        let n = 300;
        let (done, stats) = drive_service(&engine, &mut gen, n);
        assert_eq!(done.len() as u64, n);
        assert!(stats.totals.aborts_ollp > 0, "noise must hit the OLLP path");
        drop(engine);

        // Replay into a freshly loaded database (same seed = the same
        // logical snapshot the log started from).
        cfg.ollp_noise_pct = 0; // recovery replans noise-free regardless
        let fresh = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 27)));
        let (_recovered, report) = OrthrusEngine::recover(Arc::clone(&fresh), cfg);
        assert_eq!(report.txns, n, "retried commits logged exactly once");
        let (a, b) = (db.tpcc(), fresh.tpcc());
        for w in 0..a.warehouses.len() {
            // SAFETY: both databases are quiesced.
            let (ya, yb) = unsafe {
                (
                    a.warehouses.read_with(w, |r| r.ytd_cents),
                    b.warehouses.read_with(w, |r| r.ytd_cents),
                )
            };
            assert_eq!(ya, yb, "warehouse {w} ytd");
        }
        for d in 0..a.districts.len() {
            // SAFETY: quiesced (see above).
            let (da, db_) = unsafe {
                (
                    a.districts
                        .read_with(d, |r| (r.ytd_cents, r.next_o_id, r.history_ctr)),
                    b.districts
                        .read_with(d, |r| (r.ytd_cents, r.next_o_id, r.history_ctr)),
                )
            };
            assert_eq!(da, db_, "district {d}");
        }
        for c in 0..a.customers.len() {
            // SAFETY: quiesced (see above).
            let (ca, cb) = unsafe {
                (
                    a.customers
                        .read_with(c, |r| (r.balance_cents, r.payment_cnt)),
                    b.customers
                        .read_with(c, |r| (r.balance_cents, r.payment_cnt)),
                )
            };
            assert_eq!(ca, cb, "customer {c}");
        }
    }

    #[test]
    #[should_panic(expected = "needs a log_dir")]
    fn engine_rejects_durability_without_dir() {
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let mut cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        cfg.durability = DurabilityMode::Log;
        let _ = OrthrusEngine::service(db, cfg);
    }

    #[test]
    #[should_panic(expected = "needs durability on")]
    fn recover_rejects_durability_off() {
        let db = Arc::new(Database::Flat(Table::new(16, 64)));
        let cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
        let _ = OrthrusEngine::recover(db, cfg);
    }

    #[test]
    fn single_partition_messages_are_three_per_commit() {
        let _serial = crate::test_serial();
        // Single-CC transactions: acquire + grant + release = 3 messages
        // (the Appendix-A "2 message delays" acquire path plus 1 release).
        let db = Arc::new(Database::Flat(Table::new(64, 64)));
        let spec = Spec::Micro(
            MicroSpec::uniform(64, 4, false)
                .with_constraint(PartitionConstraint::Exact { count: 1, of: 2 }),
        );
        let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
        let engine = OrthrusEngine::new(db, spec, cfg);
        let stats = engine.run(&quick());
        let per_commit = stats.totals.messages_sent as f64 / stats.totals.committed as f64;
        assert!(
            (2.5..=3.5).contains(&per_commit),
            "messages/commit {per_commit:.2}, expected ≈3"
        );
    }
}
