//! The Section-3.4 alternative architecture: CC threads sharing one
//! latched lock table.
//!
//! "A plausible alternative implementation would be to share a single lock
//! table across all concurrency control threads. A single concurrency
//! control thread could then obtain all the logical locks needed by a
//! particular transaction. Execution threads could request any one of
//! several concurrency control threads to acquire locks on its behalf.
//! Although such an implementation would be subject to synchronization and
//! data movement overhead, this synchronization is only across the
//! concurrency control threads — a much smaller number of threads than the
//! total threads in the system."
//!
//! Mechanically: the execution thread picks a CC thread round-robin and
//! sends it the *whole* plan (one span). The CC thread acquires the locks
//! from the shared `orthrus-lockmgr` table in ascending key order
//! (deadlock-free), but never blocks its pump: a conflicting request is
//! parked and re-polled, because the *releasing* CC thread's table
//! promotion flips the parked waiter's flag across threads.

use std::sync::Arc;

use orthrus_common::{LockMode, TxnId};
use orthrus_lockmgr::{AcquireOutcome, LockTable, LockWaiter, WaitState};

use crate::cc::OutMsg;
use crate::msg::{CcRequest, ExecResponse, Token};
use crate::plan::LockPlan;

/// A transaction mid-acquisition on this CC thread.
struct PendingShared {
    token: Token,
    plan: Arc<LockPlan>,
    /// Next entry index to acquire.
    next: usize,
    /// Armed while waiting for `plan.entries()[next]`.
    waiter: Arc<LockWaiter>,
    /// Grant-deferral events so far: each lock that had to queue counts
    /// once — the same contention signal the partitioned CC path reports.
    deferrals: u32,
}

/// Per-CC-thread driver over the shared table.
pub struct SharedCcState {
    table: Arc<LockTable>,
    pending: Vec<PendingShared>,
    waiter_pool: Vec<Arc<LockWaiter>>,
}

/// A token-derived transaction id for the shared table (unique across
/// in-flight transactions; the table needs ids only for holder matching).
#[inline]
fn txn_of(token: Token) -> TxnId {
    TxnId(token.pack())
}

impl SharedCcState {
    /// Create a driver over `table`.
    pub fn new(table: Arc<LockTable>) -> Self {
        SharedCcState {
            table,
            pending: Vec::new(),
            waiter_pool: Vec::new(),
        }
    }

    /// Transactions parked mid-acquisition (diagnostics/tests).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    fn take_waiter(&mut self) -> Arc<LockWaiter> {
        self.waiter_pool
            .pop()
            .unwrap_or_else(|| Arc::new(LockWaiter::new()))
    }

    /// Drive one request.
    pub fn handle(&mut self, req: CcRequest, out: &mut Vec<OutMsg>) {
        match req {
            CcRequest::Acquire {
                token,
                plan,
                span_idx,
                ..
            } => {
                debug_assert_eq!(span_idx, 0, "shared mode sends whole-plan requests");
                let waiter = self.take_waiter();
                let mut p = PendingShared {
                    token,
                    plan,
                    next: 0,
                    waiter,
                    deferrals: 0,
                };
                if self.advance(&mut p, out) {
                    self.waiter_pool.push(p.waiter);
                } else {
                    self.pending.push(p);
                }
            }
            CcRequest::Release { token, plan, .. } => {
                let txn = txn_of(token);
                for &(key, _) in plan.entries() {
                    self.table.release(key, txn);
                }
            }
        }
    }

    /// Poll parked transactions; call once per pump iteration. Returns how
    /// many made progress.
    pub fn poll_pending(&mut self, out: &mut Vec<OutMsg>) -> usize {
        let mut progressed = 0;
        let mut i = 0;
        while i < self.pending.len() {
            match self.pending[i].waiter.state() {
                WaitState::Granted => {
                    self.pending[i].waiter.disarm();
                    self.pending[i].next += 1;
                    let mut p = self.pending.swap_remove(i);
                    progressed += 1;
                    if self.advance(&mut p, out) {
                        self.waiter_pool.push(p.waiter);
                    } else {
                        self.pending.push(p);
                        // The re-pushed entry lands at the end; do not
                        // advance `i`, the swapped-in element sits there.
                    }
                }
                WaitState::Waiting => i += 1,
                other => unreachable!("shared-mode waiter in state {other:?}"),
            }
        }
        progressed
    }

    /// Acquire entries from `next` onward until done (respond, return
    /// `true`) or a conflict parks the transaction (return `false`).
    fn advance(&mut self, p: &mut PendingShared, out: &mut Vec<OutMsg>) -> bool {
        let txn = txn_of(p.token);
        while p.next < p.plan.entries().len() {
            let (key, mode): (u64, LockMode) = p.plan.entries()[p.next];
            match self.table.acquire(key, txn, mode, &p.waiter, |_| true) {
                AcquireOutcome::Granted => p.next += 1,
                AcquireOutcome::Queued(_) => {
                    p.deferrals = p.deferrals.saturating_add(1);
                    return false;
                }
                AcquireOutcome::Denied => unreachable!("always-wait policy"),
            }
        }
        out.push(OutMsg::ToExec {
            exec: p.token.exec,
            resp: ExecResponse::Granted {
                slot: p.token.slot,
                span_idx: 0,
                waiters: p.deferrals,
            },
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_txn::AccessSet;

    fn plan(keys: &[(u64, LockMode)]) -> Arc<LockPlan> {
        // Shared mode: every key maps to the handling CC (constant 0).
        Arc::new(LockPlan::build(
            &AccessSet::from_unsorted(keys.to_vec()),
            |_| 0,
        ))
    }

    fn tok(exec: u16, slot: u16) -> Token {
        Token { exec, slot, gen: 0 }
    }

    fn acquire(token: Token, p: &Arc<LockPlan>) -> CcRequest {
        CcRequest::Acquire {
            token,
            plan: Arc::clone(p),
            span_idx: 0,
            forward: false,
            waiters: 0,
        }
    }

    fn release(token: Token, p: &Arc<LockPlan>) -> CcRequest {
        CcRequest::Release {
            token,
            plan: Arc::clone(p),
            span_idx: 0,
        }
    }

    #[test]
    fn uncontended_whole_plan_grants_immediately() {
        let table = Arc::new(LockTable::new(64));
        let mut cc = SharedCcState::new(Arc::clone(&table));
        let mut out = Vec::new();
        let p = plan(&[(1, LockMode::Exclusive), (2, LockMode::Shared)]);
        cc.handle(acquire(tok(0, 0), &p), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            OutMsg::ToExec {
                resp: ExecResponse::Granted { slot: 0, .. },
                ..
            }
        ));
        assert_eq!(cc.pending_count(), 0);
        cc.handle(release(tok(0, 0), &p), &mut out);
        assert!(table.holders_of(1).is_empty());
    }

    #[test]
    fn conflict_parks_and_resumes_after_release() {
        let table = Arc::new(LockTable::new(64));
        let mut cc = SharedCcState::new(Arc::clone(&table));
        let mut out = Vec::new();
        let p1 = plan(&[(5, LockMode::Exclusive)]);
        let p2 = plan(&[(5, LockMode::Exclusive), (6, LockMode::Exclusive)]);
        cc.handle(acquire(tok(0, 0), &p1), &mut out);
        out.clear();
        cc.handle(acquire(tok(0, 1), &p2), &mut out);
        assert!(out.is_empty());
        assert_eq!(cc.pending_count(), 1);
        // Nothing changes while the conflict stands.
        assert_eq!(cc.poll_pending(&mut out), 0);
        // Release unblocks; polling resumes the acquisition through key 6.
        cc.handle(release(tok(0, 0), &p1), &mut out);
        assert_eq!(cc.poll_pending(&mut out), 1);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            OutMsg::ToExec {
                resp: ExecResponse::Granted {
                    slot: 1,
                    waiters: 1,
                    ..
                },
                ..
            }
        ));
        assert_eq!(cc.pending_count(), 0);
    }

    #[test]
    fn cross_cc_grant_via_shared_table() {
        // Two CC drivers over ONE table: a release handled by cc_a wakes a
        // transaction parked on cc_b — the shared-memory coupling the
        // partitioned design avoids.
        let table = Arc::new(LockTable::new(64));
        let mut cc_a = SharedCcState::new(Arc::clone(&table));
        let mut cc_b = SharedCcState::new(Arc::clone(&table));
        let mut out = Vec::new();
        let p1 = plan(&[(9, LockMode::Exclusive)]);
        let p2 = plan(&[(9, LockMode::Exclusive)]);
        cc_a.handle(acquire(tok(0, 0), &p1), &mut out);
        cc_b.handle(acquire(tok(1, 0), &p2), &mut out);
        assert!(out.is_empty() || out.len() == 1);
        out.clear();
        assert_eq!(cc_b.pending_count(), 1);
        cc_a.handle(release(tok(0, 0), &p1), &mut out);
        assert_eq!(cc_b.poll_pending(&mut out), 1);
        assert!(matches!(
            out[0],
            OutMsg::ToExec {
                exec: 1,
                resp: ExecResponse::Granted { slot: 0, .. },
            }
        ));
    }

    #[test]
    fn waiter_pool_is_reused() {
        let table = Arc::new(LockTable::new(64));
        let mut cc = SharedCcState::new(table);
        let mut out = Vec::new();
        for round in 0..10 {
            let p = plan(&[(round as u64, LockMode::Exclusive)]);
            cc.handle(acquire(tok(0, 0), &p), &mut out);
            cc.handle(release(tok(0, 0), &p), &mut out);
        }
        assert!(cc.waiter_pool.len() <= 1, "pool must recycle one waiter");
    }
}
