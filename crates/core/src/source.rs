//! Transaction sources: where admission gets its work from.
//!
//! The seed engine could only drive itself — each execution thread's
//! admitter fabricated transactions from a synthetic generator spinning
//! as fast as the engine could commit (a *closed loop*). This module
//! turns the admitter's input into a seam: a [`TxnSource`] yields
//! [`Sourced`] transactions, and every admission policy
//! ([`crate::admit::AdmissionPolicy`]) operates identically over either
//! implementation:
//!
//! - [`SyntheticSource`] wraps the workload [`Gen`] — the closed loop,
//!   bit-identical to the seed's admission stream (the Fifo pins in
//!   `crate::proptests` run through this type);
//! - [`ClientSource`] drains a bounded per-execution-thread ingest ring
//!   fed by client [`crate::session::Session`]s — the *open* loop, where
//!   transactions arrive at an offered rate with a [`Ticket`] each and a
//!   full ring is backpressure, not silent loss.
//!
//! The distinction the execution thread actually cares about is the
//! shutdown contract: a synthetic source just stops generating when the
//! run winds down, while a client source must be **drained dry** —
//! every accepted ticket is owed a [`Completion`], including the ones
//! still sitting in the ingest ring when shutdown begins.

use std::time::Instant;

use orthrus_spsc::Consumer;
use orthrus_txn::Program;
use orthrus_workload::Gen;

/// Opaque handle for one accepted client submission. Minted by
/// `Session::try_submit`, echoed back in the [`Completion`] when the
/// transaction commits. Ids are unique **and dense** per engine run
/// (minting happens only after the backpressure and shutdown checks
/// pass, under the lane lock), so the ticket counter doubles as the
/// accepted-submission ledger conservation checks audit against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub u64);

/// One client submission travelling through an ingest ring.
#[derive(Debug)]
pub struct Submission {
    pub ticket: Ticket,
    pub program: Program,
    /// When the client submitted. Commit latency is measured from here,
    /// so ingest-ring queueing counts toward latency — exactly what an
    /// open-loop experiment is after.
    pub submitted: Instant,
}

/// Delivered to the client when a submission commits. The engine retries
/// OLLP mismatches internally and planned execution cannot deadlock, so
/// every accepted ticket completes exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    pub ticket: Ticket,
    /// Submit→commit latency, including ingest-ring wait, admission
    /// (run-queue) wait, lock wait, and any OLLP retries.
    pub latency_ns: u64,
}

/// One transaction pulled from a source, not yet planned.
pub struct Sourced {
    pub program: Program,
    /// `None` for synthetic work, `Some` for client submissions (the
    /// ticket rides the transaction to commit, where it completes).
    pub ticket: Option<Ticket>,
    /// Latency clock start: submission time for client work, pull time
    /// for synthetic work.
    pub started: Instant,
}

/// The admitter's input seam. Implementations are enum-free and
/// monomorphized into the execution thread (`Admitter<S>`): the hot
/// admission path pays no virtual dispatch for the abstraction.
pub trait TxnSource {
    /// Pull the next transaction, or `None` if no work is currently
    /// available (client ring empty). Synthetic sources never return
    /// `None`.
    fn pull(&mut self) -> Option<Sourced>;

    /// Whether undelivered input currently exists (buffered locally or
    /// visible in the ingest ring). Synthetic sources always have more.
    fn has_pending(&self) -> bool;

    /// The shutdown contract: `true` if the execution thread must keep
    /// admitting after a stop request until the source runs dry (client
    /// sources — ticket conservation), `false` if stop means stop
    /// (synthetic sources — the seed's wind-down).
    fn drain_on_stop(&self) -> bool;
}

/// The closed loop: wrap the workload generator. `pull` is infallible
/// and produces exactly the seed's program stream (the admitter's
/// planning RNG stays outside the source, so the generate→plan order is
/// byte-for-byte the seed's — proptest-pinned in `crate::proptests`).
pub struct SyntheticSource {
    gen: Gen,
}

impl SyntheticSource {
    pub fn new(gen: Gen) -> Self {
        SyntheticSource { gen }
    }
}

impl TxnSource for SyntheticSource {
    #[inline]
    fn pull(&mut self) -> Option<Sourced> {
        Some(Sourced {
            program: self.gen.next_program(),
            ticket: None,
            started: Instant::now(),
        })
    }

    fn has_pending(&self) -> bool {
        true
    }

    fn drain_on_stop(&self) -> bool {
        false
    }
}

/// The open loop: drain one bounded SPSC ingest ring fed by client
/// sessions. Pulls go through a local buffer filled with the ring's
/// batch drain ([`Consumer::drain_into`] — one cached-index refresh and
/// one atomic store per sweep, the same slice economics as the message
/// fabric), so a burst of submissions costs one ring transaction, not
/// one per transaction.
pub struct ClientSource {
    ring: Consumer<Submission>,
    /// Drained-but-unpulled submissions, **reversed** so `pop()` yields
    /// FIFO order without shifting the vector.
    buf: Vec<Submission>,
    /// Max submissions moved per ring sweep.
    batch: usize,
}

impl ClientSource {
    /// Wrap an ingest ring consumer, draining up to `batch` submissions
    /// per ring sweep (the engine passes its `flush_threshold`).
    pub fn new(ring: Consumer<Submission>, batch: usize) -> Self {
        ClientSource {
            ring,
            buf: Vec::with_capacity(batch.max(1)),
            batch: batch.max(1),
        }
    }
}

impl TxnSource for ClientSource {
    fn pull(&mut self) -> Option<Sourced> {
        if self.buf.is_empty() {
            if self.ring.drain_into(&mut self.buf, self.batch) == 0 {
                return None;
            }
            self.buf.reverse();
        }
        self.buf.pop().map(|s| Sourced {
            program: s.program,
            ticket: Some(s.ticket),
            started: s.submitted,
        })
    }

    fn has_pending(&self) -> bool {
        !self.buf.is_empty() || !self.ring.is_empty()
    }

    fn drain_on_stop(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_spsc::channel;
    use orthrus_workload::{MicroSpec, Spec};

    fn submission(id: u64) -> Submission {
        Submission {
            ticket: Ticket(id),
            program: Program::Rmw { keys: vec![id] },
            submitted: Instant::now(),
        }
    }

    #[test]
    fn synthetic_source_streams_the_generator() {
        let spec = MicroSpec::uniform(128, 4, false);
        let mut src = SyntheticSource::new(Spec::Micro(spec.clone()).generator(3, 1));
        let mut reference = spec.generator(3, 1);
        for _ in 0..32 {
            let s = src.pull().expect("synthetic sources never run dry");
            assert_eq!(s.program, reference.next_program());
            assert_eq!(s.ticket, None);
        }
        assert!(src.has_pending());
        assert!(!src.drain_on_stop());
    }

    #[test]
    fn client_source_preserves_submission_order_across_batches() {
        let (mut tx, rx) = channel::<Submission>(64);
        let mut src = ClientSource::new(rx, 4);
        for id in 0..10 {
            tx.try_push(submission(id)).unwrap();
        }
        // Batch boundary at 4: FIFO must stitch across refills.
        for id in 0..10 {
            let s = src.pull().expect("ring has work");
            assert_eq!(s.ticket, Some(Ticket(id)));
            assert_eq!(s.program, Program::Rmw { keys: vec![id] });
        }
        assert!(src.pull().is_none(), "dry ring pulls nothing");
        assert!(src.drain_on_stop());
    }

    #[test]
    fn client_source_pending_tracks_buffer_and_ring() {
        let (mut tx, rx) = channel::<Submission>(8);
        let mut src = ClientSource::new(rx, 2);
        assert!(!src.has_pending());
        for id in 0..3 {
            tx.try_push(submission(id)).unwrap();
        }
        assert!(src.has_pending(), "ring occupancy counts");
        let _ = src.pull();
        // One drained into the buffer (batch 2 → one still buffered).
        assert!(src.has_pending(), "buffered submissions count");
        let _ = src.pull();
        let _ = src.pull();
        assert!(!src.has_pending());
    }

    #[test]
    fn client_latency_clock_starts_at_submission() {
        let (mut tx, rx) = channel::<Submission>(8);
        let mut src = ClientSource::new(rx, 8);
        let before = Instant::now();
        tx.try_push(submission(0)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let s = src.pull().unwrap();
        assert!(
            s.started >= before && s.started.elapsed().as_micros() >= 2_000,
            "queue wait must count toward latency"
        );
    }
}
