//! The lock plan: a transaction's access set grouped into per-CC spans.
//!
//! Spans are ordered by ascending CC id — the global acquisition order of
//! Section 3.2. Each CC thread processes its whole span in one atomic step
//! (it is single-threaded), which together with per-key FIFO queues makes
//! wait-for edges point strictly from later requests to earlier ones:
//! deadlock is impossible.

use orthrus_common::{Key, LockMode};
use orthrus_txn::AccessSet;

/// One contiguous run of plan entries owned by a single CC thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Owning CC thread.
    pub cc: u32,
    /// Start index into `entries`.
    pub start: u32,
    /// One past the last index.
    pub end: u32,
}

/// An immutable, shareable lock plan. Passed by `Arc` through the message
/// fabric so CC threads never touch execution-thread state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockPlan {
    entries: Vec<(Key, LockMode)>,
    spans: Vec<Span>,
}

impl LockPlan {
    /// Group a (key-sorted, deduplicated) access set by CC thread.
    pub fn build(set: &AccessSet, mut cc_of: impl FnMut(Key) -> u32) -> Self {
        let mut entries: Vec<(u32, Key, LockMode)> = set
            .entries()
            .iter()
            .map(|&(k, m)| (cc_of(k), k, m))
            .collect();
        // Ascending (cc, key): the global deadlock-avoidance order.
        entries.sort_unstable_by_key(|&(cc, k, _)| (cc, k));

        let mut spans: Vec<Span> = Vec::new();
        for (i, &(cc, _, _)) in entries.iter().enumerate() {
            match spans.last_mut() {
                Some(s) if s.cc == cc => s.end = (i + 1) as u32,
                _ => spans.push(Span {
                    cc,
                    start: i as u32,
                    end: (i + 1) as u32,
                }),
            }
        }
        LockPlan {
            entries: entries.into_iter().map(|(_, k, m)| (k, m)).collect(),
            spans,
        }
    }

    /// All entries in acquisition order.
    pub fn entries(&self) -> &[(Key, LockMode)] {
        &self.entries
    }

    /// The per-CC spans, ascending by CC id.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of CC threads involved (the paper's `Ncc`).
    pub fn n_cc_involved(&self) -> usize {
        self.spans.len()
    }

    /// The entries of span `idx`.
    pub fn span_entries(&self, idx: usize) -> &[(Key, LockMode)] {
        let s = self.spans[idx];
        &self.entries[s.start as usize..s.end as usize]
    }

    /// Whether the plan is empty (degenerate transactions).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(Key, LockMode)]) -> AccessSet {
        AccessSet::from_unsorted(pairs.to_vec())
    }

    #[test]
    fn groups_by_cc_ascending() {
        use LockMode::*;
        // cc_of = key % 3
        let plan = LockPlan::build(
            &set(&[
                (1, Exclusive),
                (2, Shared),
                (3, Exclusive),
                (4, Shared),
                (6, Exclusive),
            ]),
            |k| (k % 3) as u32,
        );
        // cc0: {3,6}, cc1: {1,4}, cc2: {2}
        assert_eq!(plan.n_cc_involved(), 3);
        assert_eq!(plan.spans()[0].cc, 0);
        assert_eq!(plan.span_entries(0), &[(3, Exclusive), (6, Exclusive)]);
        assert_eq!(plan.span_entries(1), &[(1, Exclusive), (4, Shared)]);
        assert_eq!(plan.span_entries(2), &[(2, Shared)]);
        // Spans tile the entries exactly.
        let n: u32 = plan.spans().iter().map(|s| s.end - s.start).sum();
        assert_eq!(n as usize, plan.entries().len());
    }

    #[test]
    fn single_cc_single_span() {
        let plan = LockPlan::build(
            &set(&[(10, LockMode::Shared), (20, LockMode::Shared)]),
            |_| 5,
        );
        assert_eq!(plan.n_cc_involved(), 1);
        assert_eq!(
            plan.spans()[0],
            Span {
                cc: 5,
                start: 0,
                end: 2
            }
        );
    }

    #[test]
    fn keys_sorted_within_span() {
        let plan = LockPlan::build(
            &set(&[
                (9, LockMode::Exclusive),
                (3, LockMode::Exclusive),
                (6, LockMode::Exclusive),
            ]),
            |_| 0,
        );
        let keys: Vec<u64> = plan.span_entries(0).iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![3, 6, 9]);
    }

    #[test]
    fn empty_plan() {
        let plan = LockPlan::build(&set(&[]), |_| 0);
        assert!(plan.is_empty());
        assert_eq!(plan.n_cc_involved(), 0);
    }
}
