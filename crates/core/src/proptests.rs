//! Property tests for the lock-plan grouping — the structure the whole
//! deadlock-freedom argument rests on — a model-based check of the CC
//! thread's lock state machine, and the pin that keeps `Fifo` admission
//! identical to the seed's inlined admission path.

use std::collections::VecDeque;
use std::sync::Arc;

use proptest::prelude::*;

use orthrus_common::{FxHashMap, Key, LockMode, XorShift64};
use orthrus_storage::tpcc::{TpccConfig, TpccDb};
use orthrus_storage::Table;
use orthrus_txn::{plan_accesses, AccessSet, Database};
use orthrus_workload::{MicroSpec, Spec, TpccSpec};

use crate::admit::{AdaptiveController, AdmissionPolicy, Admitter};
use crate::cc::{CcState, OutMsg};
use crate::msg::{CcRequest, ExecResponse, Token};
use crate::plan::LockPlan;
use crate::source::SyntheticSource;

fn mode_strategy() -> impl Strategy<Value = LockMode> {
    prop_oneof![Just(LockMode::Shared), Just(LockMode::Exclusive)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Spans tile the entry list exactly, ascend strictly by CC id, and
    /// every entry lands on the CC thread the mapping assigns it.
    #[test]
    fn spans_tile_and_ascend(
        raw in prop::collection::vec((0u64..512, mode_strategy()), 1..64),
        n_cc in 1u32..16,
    ) {
        let set = AccessSet::from_unsorted(raw);
        let plan = LockPlan::build(&set, |k| (k % n_cc as u64) as u32);

        // Tiling: spans cover [0, entries.len()) contiguously.
        let mut cursor = 0u32;
        for s in plan.spans() {
            prop_assert_eq!(s.start, cursor);
            prop_assert!(s.end > s.start);
            cursor = s.end;
        }
        prop_assert_eq!(cursor as usize, plan.entries().len());

        // Strictly ascending CC order (the global acquisition order).
        for w in plan.spans().windows(2) {
            prop_assert!(w[0].cc < w[1].cc);
        }

        // Ownership and intra-span key order.
        for (i, s) in plan.spans().iter().enumerate() {
            let entries = plan.span_entries(i);
            for &(k, _) in entries {
                prop_assert_eq!((k % n_cc as u64) as u32, s.cc);
            }
            for w in entries.windows(2) {
                prop_assert!(w[0].0 < w[1].0, "keys sorted within span");
            }
        }
    }

    /// The plan loses nothing: its entries are a permutation of the access
    /// set's entries.
    #[test]
    fn plan_preserves_access_set(
        raw in prop::collection::vec((0u64..256, mode_strategy()), 1..64),
        n_cc in 1u32..8,
    ) {
        let set = AccessSet::from_unsorted(raw);
        let plan = LockPlan::build(&set, |k| (k % n_cc as u64) as u32);
        let mut from_plan: Vec<_> = plan.entries().to_vec();
        let mut from_set: Vec<_> = set.entries().to_vec();
        from_plan.sort_unstable_by_key(|e| e.0);
        from_set.sort_unstable_by_key(|e| e.0);
        prop_assert_eq!(from_plan, from_set);
    }

    /// `n_cc_involved` counts exactly the distinct CC threads.
    #[test]
    fn ncc_counts_distinct_ccs(
        raw in prop::collection::vec((0u64..64, mode_strategy()), 1..32),
        n_cc in 1u32..8,
    ) {
        let set = AccessSet::from_unsorted(raw);
        let plan = LockPlan::build(&set, |k| (k % n_cc as u64) as u32);
        let mut ccs: Vec<u32> = set
            .entries()
            .iter()
            .map(|&(k, _)| (k % n_cc as u64) as u32)
            .collect();
        ccs.sort_unstable();
        ccs.dedup();
        prop_assert_eq!(plan.n_cc_involved(), ccs.len());
    }
}

// ---- Fifo admission ≡ seed admission -------------------------------------
//
// The seed inlined admission in the execution thread: pull a program from
// the thread's generator, plan it with the thread's planning RNG
// (`seed ^ 0x6578_6563`), admit. The `Fifo` policy must reproduce that
// stream bit for bit — programs AND plans — so the policy layer is a pure
// refactor, not a behaviour change. Since the open-loop redesign the
// admitter pulls through the `TxnSource` seam, so these pins now also
// guarantee that `SyntheticSource` is transparent: generator → source →
// admitter yields the identical stream the seed's inlined
// generate-then-plan produced. The reference below is written against
// the raw generator + `plan_accesses`, independent of both the
// `Admitter` and the source implementation.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Micro workloads: every admission matches the seed's
    /// generate-then-plan order for any spec shape, seed, and thread id.
    #[test]
    fn fifo_admission_matches_seed_stream_micro(
        seed in any::<u64>(),
        exec_id in 0u16..4,
        n_records in 64u64..512,
        ops in 1usize..6,
        hot in prop::option::of(1u64..8),
        read_only in any::<bool>(),
    ) {
        let spec = match hot {
            Some(n_hot) => {
                let hot_ops = (n_hot as usize).min(ops);
                MicroSpec::hot_cold(n_records, n_hot, hot_ops, ops, read_only)
            }
            None => MicroSpec::uniform(n_records, ops, read_only),
        };
        let db = Database::Flat(Table::new(n_records as usize, 8));
        let mut admit = Admitter::new(
            &AdmissionPolicy::Fifo,
            SyntheticSource::new(Spec::Micro(spec.clone()).generator(seed, exec_id as usize)),
            seed,
            exec_id,
            0,
        );
        let mut ref_gen = spec.generator(seed, exec_id as usize);
        let mut ref_rng = XorShift64::for_thread(seed ^ 0x6578_6563, exec_id as usize);
        for round in 0..24 {
            // Half the admissions go through the run API with headroom > 1
            // (the execution thread's shape): Fifo runs are still single
            // transactions in seed order, whatever `max` allows.
            let a = if round % 2 == 0 {
                admit.next(&db).expect("synthetic sources always admit")
            } else {
                let mut run = admit.next_run(&db, 8);
                prop_assert_eq!(run.len(), 1, "fifo admits runs of one");
                run.pop().unwrap()
            };
            let program = ref_gen.next_program();
            let plan = plan_accesses(&program, &db, 0, &mut ref_rng);
            prop_assert_eq!(&a.program, &program, "admission order diverged");
            prop_assert_eq!(&a.plan, &plan, "admission-time plan diverged");
            prop_assert_eq!(a.ticket, None, "synthetic work is unticketed");
        }
        prop_assert_eq!(admit.queued(), 0, "fifo must not queue ahead");
    }

    /// TPC-C with OLLP noise: the reconnaissance RNG stream (consumed
    /// during planning) must also stay aligned with the seed's.
    #[test]
    fn fifo_admission_matches_seed_stream_tpcc(
        seed in any::<u64>(),
        exec_id in 0u16..3,
        noise in 0u32..=100,
    ) {
        let cfg_t = TpccConfig::tiny(2);
        let db = Database::Tpcc(TpccDb::load(cfg_t, 5));
        let spec = TpccSpec::paper_mix(cfg_t);
        let mut admit = Admitter::new(
            &AdmissionPolicy::Fifo,
            SyntheticSource::new(Spec::Tpcc(spec.clone()).generator(seed, exec_id as usize)),
            seed,
            exec_id,
            noise,
        );
        let mut ref_gen = spec.generator(seed, exec_id as usize);
        let mut ref_rng = XorShift64::for_thread(seed ^ 0x6578_6563, exec_id as usize);
        for _ in 0..16 {
            let a = admit.next(&db).expect("synthetic sources always admit");
            let program = ref_gen.next_program();
            let plan = plan_accesses(&program, &db, noise, &mut ref_rng);
            prop_assert_eq!(&a.program, &program);
            prop_assert_eq!(&a.plan, &plan);
        }
    }
}

// ---- Adaptive admission determinism --------------------------------------
//
// The adaptive controller must be a pure function of the conflict-signal
// trace: same epoch counter sequence ⇒ same policy-switch schedule. The
// pin has the same role as the Fifo bit-equivalence pin above — it keeps
// anyone from sneaking a clock, a random tiebreak, or cross-thread state
// into the switching decision, which would make runs irreproducible.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Replaying a fixed epoch-counter trace yields the identical
    /// (mode, batch-depth) schedule — and the schedule is *online*: a
    /// longer trace only appends to it. The hysteresis depth also bounds
    /// the switch count structurally (no flapping faster than one switch
    /// per K epochs).
    #[test]
    fn adaptive_controller_schedule_is_a_pure_function_of_the_trace(
        trace in prop::collection::vec((0u64..512, 1u64..256), 1..128),
        threshold in 1u32..120,
        k in 1u32..5,
        max_batch in 1usize..64,
    ) {
        let replay = |ctl: &mut AdaptiveController, n: usize| -> Vec<(bool, usize)> {
            trace[..n].iter().map(|&(w, a)| ctl.observe_epoch(w, a)).collect()
        };
        let mut a = AdaptiveController::new(threshold, k, max_batch);
        let mut b = AdaptiveController::new(threshold, k, max_batch);
        let sa = replay(&mut a, trace.len());
        let sb = replay(&mut b, trace.len());
        prop_assert_eq!(&sa, &sb, "same trace must yield the same schedule");
        prop_assert!(
            a.switches() <= trace.len() as u64 / k as u64,
            "{} switches over {} epochs breaks the 1-per-{k}-epochs bound",
            a.switches(), trace.len()
        );
        let mut c = AdaptiveController::new(threshold, k, max_batch);
        let half = trace.len() / 2;
        let prefix = replay(&mut c, half);
        prop_assert_eq!(&sa[..half], &prefix[..], "schedule must be online");
    }

    /// End to end through the admitter: two admitters with the same seed
    /// and the same injected per-run conflict signal admit the identical
    /// transaction stream and switch at the identical points.
    #[test]
    fn adaptive_admission_is_deterministic_given_a_signal_trace(
        seed in any::<u64>(),
        exec_id in 0u16..4,
        signal in prop::collection::vec(0u32..12, 64..160),
    ) {
        let spec = MicroSpec::hot_cold(512, 4, 2, 4, false);
        let policy = AdmissionPolicy::Adaptive {
            classes: 4,
            max_batch: 8,
            threshold_pct: 40,
            hysteresis: 1,
            epoch: 8,
        };
        let db = Database::Flat(Table::new(512, 8));
        let replay = || -> Vec<(Vec<orthrus_txn::Program>, bool)> {
            let mut admit = Admitter::new(
                &policy,
                SyntheticSource::new(Spec::Micro(spec.clone()).generator(seed, exec_id as usize)),
                seed,
                exec_id,
                0,
            );
            signal
                .iter()
                .map(|&s| {
                    let run = admit.next_run(&db, 4);
                    admit.note_lock_waits(s * run.len() as u32);
                    (run.into_iter().map(|a| a.program).collect(), admit.batching())
                })
                .collect()
        };
        prop_assert_eq!(replay(), replay(), "same signal trace, same admission schedule");
    }
}

// ---- Model-based check of the CC state machine --------------------------
//
// A reference implementation of the single-CC lock discipline (FIFO
// queues, longest-compatible-prefix grants, whole-span completion) runs
// in lockstep with `CcState` over randomly generated acquire/release
// schedules; grant emissions must match step by step (as multisets: the
// order of completions within one release step is not semantically
// meaningful).

/// Per-key model state: current holders and the FIFO wait queue.
type ModelEntry = (Vec<(u64, LockMode)>, VecDeque<(u64, LockMode)>);

/// The reference model: per-key holders + FIFO waiters, per-transaction
/// ungranted countdown.
#[derive(Default)]
struct Model {
    entries: FxHashMap<Key, ModelEntry>,
    remaining: FxHashMap<u64, usize>,
}

impl Model {
    fn compatible(holders: &[(u64, LockMode)], mode: LockMode) -> bool {
        holders.iter().all(|&(_, m)| !m.conflicts_with(mode))
    }

    /// Returns the tokens completed by this acquire (0 or 1).
    fn acquire(&mut self, token: u64, plan: &[(Key, LockMode)]) -> Vec<u64> {
        let mut ungranted = 0usize;
        for &(k, m) in plan {
            let (holders, waiters) = self.entries.entry(k).or_default();
            if waiters.is_empty() && Self::compatible(holders, m) {
                holders.push((token, m));
            } else {
                waiters.push_back((token, m));
                ungranted += 1;
            }
        }
        if ungranted == 0 {
            vec![token]
        } else {
            self.remaining.insert(token, ungranted);
            Vec::new()
        }
    }

    /// Returns the tokens completed by this release (any number).
    fn release(&mut self, token: u64, plan: &[(Key, LockMode)]) -> Vec<u64> {
        let mut done = Vec::new();
        for &(k, _) in plan {
            let (holders, waiters) = self.entries.get_mut(&k).expect("release unknown key");
            holders.retain(|&(t, _)| t != token);
            while let Some(&(t, m)) = waiters.front() {
                if !Self::compatible(holders, m) {
                    break;
                }
                waiters.pop_front();
                holders.push((t, m));
                let r = self
                    .remaining
                    .get_mut(&t)
                    .expect("waiter without countdown");
                *r -= 1;
                if *r == 0 {
                    self.remaining.remove(&t);
                    done.push(t);
                }
            }
        }
        done
    }

    fn holders_of(&self, k: Key) -> Vec<u64> {
        self.entries
            .get(&k)
            .map(|(h, _)| h.iter().map(|&(t, _)| t).collect())
            .unwrap_or_default()
    }
}

fn grants_of(out: &[OutMsg]) -> Vec<u16> {
    out.iter()
        .map(|m| match m {
            OutMsg::ToExec {
                resp: ExecResponse::Granted { slot, .. },
                ..
            } => *slot,
            OutMsg::ToCc { .. } => panic!("single-CC plans never forward"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CcState and the reference model emit identical grants over random
    /// schedules, and both drain to empty.
    #[test]
    fn cc_state_matches_reference_model(
        plans in prop::collection::vec(
            prop::collection::vec((0u64..12, mode_strategy()), 1..6),
            1..24,
        ),
        schedule in prop::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut cc = CcState::new(0, 64);
        let mut model = Model::default();
        let mut out = Vec::new();

        // Per-transaction state: its deduplicated plan and lifecycle.
        let plans: Vec<Arc<LockPlan>> = plans
            .iter()
            .map(|raw| Arc::new(LockPlan::build(&AccessSet::from_unsorted(raw.clone()), |_| 0)))
            .collect();
        let token = |i: usize| Token { exec: 0, slot: i as u16, gen: 0 };

        let mut next_submit = 0usize;
        let mut granted: Vec<usize> = Vec::new(); // awaiting release
        let mut outstanding = 0usize;             // submitted, not granted

        let mut step = |cc: &mut CcState,
                        model: &mut Model,
                        submit: bool,
                        next_submit: &mut usize,
                        granted: &mut Vec<usize>,
                        outstanding: &mut usize|
         -> Result<(), TestCaseError> {
            out.clear();
            let expected: Vec<u64>;
            if submit && *next_submit < plans.len() {
                let i = *next_submit;
                *next_submit += 1;
                let entries = plans[i].entries().to_vec();
                expected = model.acquire(token(i).pack(), &entries);
                cc.handle(
                    CcRequest::Acquire {
                        token: token(i),
                        plan: Arc::clone(&plans[i]),
                        span_idx: 0,
                        forward: true,
                        waiters: 0,
                    },
                    &mut out,
                );
                *outstanding += 1;
            } else if let Some(i) = granted.pop() {
                let entries = plans[i].entries().to_vec();
                expected = model.release(token(i).pack(), &entries);
                cc.handle(
                    CcRequest::Release {
                        token: token(i),
                        plan: Arc::clone(&plans[i]),
                        span_idx: 0,
                    },
                    &mut out,
                );
            } else {
                return Ok(());
            }
            // Grants must match as multisets. For exec 0, gen 0 the packed
            // token equals the slot, so expected tokens recover slots
            // directly.
            let mut got = grants_of(&out);
            let mut want: Vec<u16> = expected.iter().map(|&t| t as u16).collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(&got, &want, "grant mismatch");
            for &slot in &got {
                granted.push(slot as usize);
                *outstanding -= 1;
            }
            // Holder sets agree on every key.
            for k in 0u64..12 {
                let mut a = cc.holders_of(k);
                let mut b = model.holders_of(k);
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "holders diverge on key {}", k);
            }
            prop_assert_eq!(cc.pending_count(), *outstanding, "pending count");
            Ok(())
        };

        for &submit in &schedule {
            step(&mut cc, &mut model, submit, &mut next_submit, &mut granted, &mut outstanding)?;
        }
        // Drain: submit everything left, then release until quiescent.
        while next_submit < plans.len() {
            step(&mut cc, &mut model, true, &mut next_submit, &mut granted, &mut outstanding)?;
        }
        while !granted.is_empty() {
            step(&mut cc, &mut model, false, &mut next_submit, &mut granted, &mut outstanding)?;
        }
        prop_assert_eq!(outstanding, 0, "every transaction granted");
        prop_assert_eq!(cc.pending_count(), 0);
        for k in 0u64..12 {
            prop_assert!(cc.holders_of(k).is_empty(), "key {} still held", k);
        }
    }
}

proptest! {
    // Engine-spawning cases are expensive; a handful covers the policy ×
    // shape space (the deterministic sub-steps are pinned separately in
    // orthrus-durability's proptests).
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Replay determinism (the durability contract's keystone): a
    /// service-mode run with command logging, shut down cleanly, then
    /// replayed from its log into a fresh database, yields **bit-identical
    /// table contents** to the live run's final state — under every
    /// admission policy, arbitrary key mixes, and enough submissions to
    /// exercise fused multi-transaction records.
    #[test]
    fn replay_reproduces_live_state_bit_for_bit(
        programs in prop::collection::vec(
            prop::collection::vec(0u64..48, 1..5),
            20..120,
        ),
        policy in 0usize..3,
        seed in 0u64..1000,
    ) {
        let _serial = crate::test_serial();
        let scratch = orthrus_common::TempDir::new("replay-pin");
        let admission = match policy {
            0 => AdmissionPolicy::Fifo,
            1 => AdmissionPolicy::ConflictBatch { classes: 4, batch: 8 },
            _ => AdmissionPolicy::Adaptive {
                classes: 4,
                max_batch: 8,
                threshold_pct: 5,
                hysteresis: 1,
                epoch: 32,
            },
        };
        let db = Arc::new(Database::Flat(Table::new(48, 64)));
        let mut cfg = crate::config::OrthrusConfig::with_threads(
            1,
            2,
            crate::config::CcAssignment::KeyModulo,
        )
        .with_durability(orthrus_durability::DurabilityMode::Log, scratch.path());
        cfg.admission = admission;
        let engine = crate::engine::OrthrusEngine::service(Arc::clone(&db), cfg.clone());
        let mut handle = engine.start(seed);
        let session = handle.session();
        for keys in &programs {
            session
                .submit(orthrus_txn::Program::Rmw { keys: keys.clone() })
                .expect("engine is accepting");
        }
        let stats = handle.shutdown();
        prop_assert_eq!(stats.totals.committed_all as usize, programs.len());
        drop(handle);
        drop(engine);

        let fresh = Arc::new(Database::Flat(Table::new(48, 64)));
        let (recovered, report) =
            crate::engine::OrthrusEngine::recover(Arc::clone(&fresh), cfg);
        prop_assert_eq!(report.txns as usize, programs.len());
        prop_assert_eq!(report.tickets.len(), programs.len());
        // Bit-identical table contents: every record counter agrees.
        for k in 0..48u64 {
            // SAFETY: both databases are quiesced (engines shut down).
            let (live, replayed) = unsafe { (db.read_counter(k), fresh.read_counter(k)) };
            prop_assert_eq!(live, replayed, "key {} diverged", k);
        }
        drop(recovered);
    }
}
