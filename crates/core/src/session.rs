//! Client sessions: the open-loop submission API.
//!
//! A [`Session`] is a cheap, cloneable handle a client (or an offered-load
//! driver) uses to push [`Program`]s into a running service-mode engine
//! ([`crate::OrthrusEngine::start`]). Submissions are routed to a
//! per-execution-thread ingest ring:
//!
//! - **by hot key** when the program exposes one
//!   ([`Program::hot_key_hint`]): all submissions contending on a key
//!   land on the same execution thread, so conflict-class admission can
//!   fuse them into single lock acquisitions exactly as it does for
//!   synthetic work;
//! - **round-robin** otherwise.
//!
//! The rings are bounded: a full ring is *backpressure*
//! ([`TrySubmitError::Full`] hands the program back), never silent loss —
//! every minted [`Ticket`] is owed a [`crate::source::Completion`].
//!
//! The producer side of each ring sits behind a mutex shared by all
//! sessions. That lock is deliberately **off the engine's hot path**: the
//! consumer side stays a pure latch-free SPSC drain on the execution
//! thread; only submitting clients contend, and only per-lane. The same
//! mutex doubles as the shutdown fence (see [`SubmitShared::close`]): a
//! submission that won the lock before close lands in the ring and will
//! be drained; one that loses sees `accepting == false` and is refused —
//! there is no window in which a ticket can be accepted yet missed by the
//! drain.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use orthrus_common::{fx_hash_u64, Backoff};
use orthrus_spsc::Producer;
use orthrus_txn::Program;
use parking_lot::Mutex;

use crate::hub::OwnerTable;
use crate::source::{Submission, Ticket};

/// Acquire a lane's producer lock without OS-blocking: under the
/// deterministic sim scheduler another enrolled submitter may be parked
/// *inside* its ring push (a schedule point) while still holding the
/// lane mutex, so a blocking `lock()` would wedge the token. Parking at
/// the sim seam keeps the handoff deterministic; outside the sim the
/// loop is the plain try-spin a short critical section tolerates.
fn lock_lane(
    lane: &Mutex<Producer<Submission>>,
) -> parking_lot::MutexGuard<'_, Producer<Submission>> {
    loop {
        if let Some(g) = lane.try_lock() {
            return g;
        }
        if !orthrus_common::sim::on_park() {
            std::thread::yield_now();
        }
    }
}

/// Why a submission was not accepted. Both variants hand the program
/// back so the caller can retry without cloning.
#[derive(Debug)]
pub enum TrySubmitError {
    /// The destination ingest ring is full — backpressure. Retry after
    /// the engine drains (or use the blocking [`Session::submit`]).
    Full(Program),
    /// The engine has begun shutting down; no new work is accepted.
    Shutdown(Program),
}

impl TrySubmitError {
    /// Recover the rejected program.
    pub fn into_program(self) -> Program {
        match self {
            TrySubmitError::Full(p) | TrySubmitError::Shutdown(p) => p,
        }
    }
}

impl std::fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySubmitError::Full(_) => write!(f, "ingest ring full (backpressure)"),
            TrySubmitError::Shutdown(_) => write!(f, "engine shutting down"),
        }
    }
}

/// Outcome of a [`Session::try_submit_batch`]: which input programs were
/// accepted (with their tickets) and which were backpressured (handed
/// back for retry). Indices refer to positions in the submitted batch.
#[derive(Debug, Default)]
pub struct BatchSubmit {
    /// `(input index, ticket)` for each accepted program.
    pub accepted: Vec<(usize, Ticket)>,
    /// `(input index, program)` for each program refused by a full lane
    /// — or by shutdown, in which case `shutdown` is set.
    pub rejected: Vec<(usize, Program)>,
    /// Whether any rejection was due to the engine shutting down (a
    /// terminal condition, unlike ring-full backpressure).
    pub shutdown: bool,
}

/// Submission state shared by every session of one service-mode engine:
/// the ingest-ring producers (one per execution thread), the ticket
/// counter, and the accepting flag the shutdown fence flips.
pub(crate) struct SubmitShared {
    lanes: Vec<Mutex<Producer<Submission>>>,
    accepting: AtomicBool,
    /// Ticket-id mint, bumped only for *accepted* submissions (space is
    /// checked under the lane lock before minting), so ids are dense and
    /// the counter doubles as the conservation ledger completions are
    /// checked against.
    next_ticket: AtomicU64,
    round_robin: AtomicUsize,
    /// Ticket → client-id tags for completion fan-out
    /// ([`crate::hub::CompletionHub`]). Written under the lane lock
    /// *before* the ring push, so routing always finds the owner.
    owners: OwnerTable,
}

impl SubmitShared {
    pub(crate) fn new(lanes: Vec<Producer<Submission>>) -> Self {
        assert!(!lanes.is_empty(), "validated by OrthrusConfig (n_exec ≥ 1)");
        SubmitShared {
            lanes: lanes.into_iter().map(Mutex::new).collect(),
            accepting: AtomicBool::new(true),
            next_ticket: AtomicU64::new(0),
            round_robin: AtomicUsize::new(0),
            owners: OwnerTable::new(),
        }
    }

    /// Submissions accepted so far (each is owed exactly one completion;
    /// backpressured or post-shutdown attempts are not counted).
    pub(crate) fn accepted(&self) -> u64 {
        self.next_ticket.load(Ordering::Acquire)
    }

    /// The shutdown fence. After this returns, no further submission can
    /// land in any ingest ring: the flag flip happens-before the per-lane
    /// lock round, so a submitter that enqueued raced *before* the fence
    /// (its push is visible to the draining execution thread), and any
    /// later one observes `accepting == false` under the lane lock.
    pub(crate) fn close(&self) {
        self.accepting.store(false, Ordering::SeqCst);
        for lane in &self.lanes {
            drop(lane.lock());
        }
    }
}

/// A client handle into a running service-mode engine. Clone freely —
/// sessions share the engine's submission state and are `Send`; each
/// clone may live on its own client thread.
#[derive(Clone)]
pub struct Session {
    shared: Arc<SubmitShared>,
}

impl Session {
    pub(crate) fn new(shared: Arc<SubmitShared>) -> Self {
        Session { shared }
    }

    /// Submit without blocking. Routes by the program's
    /// [`Program::routing_key`] — the hot-key hint, else the smallest
    /// static-footprint key, so hint-less programs with a known footprint
    /// (transfers, fused batches) still land on a deterministic lane;
    /// only footprint-free programs round-robin. Mints a [`Ticket`] on
    /// success, and returns the program back inside
    /// [`TrySubmitError::Full`] when the destination ring is full.
    pub fn try_submit(&self, program: Program) -> Result<Ticket, TrySubmitError> {
        self.try_submit_inner(program, None)
    }

    /// [`Self::try_submit`], tagging the ticket with a client id from
    /// [`crate::hub::CompletionHub::register`] so the hub can route the
    /// completion back to that client.
    pub fn try_submit_owned(&self, program: Program, owner: u32) -> Result<Ticket, TrySubmitError> {
        self.try_submit_inner(program, Some(owner))
    }

    fn try_submit_inner(
        &self,
        program: Program,
        owner: Option<u32>,
    ) -> Result<Ticket, TrySubmitError> {
        let shared = &self.shared;
        let lane = match program.routing_key() {
            Some(key) => (fx_hash_u64(key) % shared.lanes.len() as u64) as usize,
            None => shared.round_robin.fetch_add(1, Ordering::Relaxed) % shared.lanes.len(),
        };
        let mut producer = lock_lane(&shared.lanes[lane]);
        if !shared.accepting.load(Ordering::SeqCst) {
            return Err(TrySubmitError::Shutdown(program));
        }
        // Space check before minting keeps ticket ids dense (= accepted
        // count). Under the lane lock the occupancy can only shrink (the
        // execution thread drains concurrently), so the push cannot fail.
        if producer.len() >= producer.capacity() {
            return Err(TrySubmitError::Full(program));
        }
        let ticket = Ticket(shared.next_ticket.fetch_add(1, Ordering::AcqRel));
        if let Some(owner) = owner {
            // Before the push: the completion happens-after the push, so
            // the router can never see an ownerless owned ticket.
            shared.owners.insert(ticket.0, owner);
        }
        producer
            .try_push(Submission {
                ticket,
                program,
                submitted: Instant::now(),
            })
            .unwrap_or_else(|_| unreachable!("space checked under the lane lock"));
        Ok(ticket)
    }

    /// Submit a whole batch with one lane-lock acquisition and one ring
    /// publish per *destination lane* — the wire-batching fast path: a
    /// network front-end turns one TCP read of `k` requests into at most
    /// `min(k, n_exec)` ring transactions instead of `k`.
    ///
    /// Routing is identical to [`Self::try_submit`] (routing key, else
    /// round-robin). Acceptance is per lane and best-effort: programs
    /// that fit are accepted (tickets reported with their input index),
    /// programs that hit a full lane are handed back in `rejected` for
    /// the caller to retry — that hand-back is the backpressure signal a
    /// connection maps onto TCP flow control.
    pub fn try_submit_batch(&self, programs: Vec<Program>, owner: Option<u32>) -> BatchSubmit {
        let shared = &self.shared;
        let n_lanes = shared.lanes.len();
        let mut out = BatchSubmit {
            accepted: Vec::with_capacity(programs.len()),
            rejected: Vec::new(),
            shutdown: false,
        };
        if programs.is_empty() {
            return out;
        }
        let mut slots: Vec<Option<Program>> = programs.into_iter().map(Some).collect();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_lanes];
        for (i, slot) in slots.iter().enumerate() {
            let p = slot.as_ref().expect("just wrapped");
            let lane = match p.routing_key() {
                Some(key) => (fx_hash_u64(key) % n_lanes as u64) as usize,
                None => shared.round_robin.fetch_add(1, Ordering::Relaxed) % n_lanes,
            };
            buckets[lane].push(i);
        }
        let mut stage: Vec<Submission> = Vec::new();
        for (lane, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut producer = lock_lane(&shared.lanes[lane]);
            if !shared.accepting.load(Ordering::SeqCst) {
                out.shutdown = true;
                for &i in bucket {
                    out.rejected.push((i, slots[i].take().expect("unconsumed")));
                }
                continue;
            }
            // Same dense-ticket discipline as the single-submission path:
            // count the space under the lane lock, mint exactly that many.
            let space = producer.capacity() - producer.len();
            let k = space.min(bucket.len());
            if k > 0 {
                let base = shared.next_ticket.fetch_add(k as u64, Ordering::AcqRel);
                let now = Instant::now();
                for (j, &i) in bucket[..k].iter().enumerate() {
                    let ticket = Ticket(base + j as u64);
                    if let Some(owner) = owner {
                        shared.owners.insert(ticket.0, owner);
                    }
                    stage.push(Submission {
                        ticket,
                        program: slots[i].take().expect("unconsumed"),
                        submitted: now,
                    });
                    out.accepted.push((i, ticket));
                }
                let pushed = producer.try_push_slice(&mut stage);
                assert_eq!(
                    pushed, k,
                    "space checked under the lane lock; ingest pushes are not fault-injected"
                );
                stage.clear();
            }
            for &i in &bucket[k..] {
                out.rejected.push((i, slots[i].take().expect("unconsumed")));
            }
        }
        out
    }

    /// Remove and return the owner tag of a completed ticket (routing
    /// consumes the tag — each ticket completes exactly once).
    pub(crate) fn take_owner(&self, ticket: Ticket) -> Option<u32> {
        self.shared.owners.take(ticket.0)
    }

    /// Submit, backing off while the destination ring is full (the
    /// open-loop driver's saturation behaviour: offered load beyond
    /// engine capacity queues here). Errors only on shutdown.
    ///
    /// Completions should be drained (`EngineHandle::drain_completions`)
    /// alongside sustained submission: the completion rings are the
    /// bounded fast path, and a client that lags parks its completions
    /// in engine-side overflow buffers — never lost, never wedging the
    /// engine, but memory grows with the lag until the client drains.
    pub fn submit(&self, mut program: Program) -> Result<Ticket, TrySubmitError> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_submit(program) {
                Ok(t) => return Ok(t),
                Err(TrySubmitError::Full(p)) => {
                    program = p;
                    if backoff.is_yielding() {
                        // A full ring stays full for a whole engine drain
                        // cycle — much longer than a lock handoff — so once
                        // the spin budget is spent, sleep instead of burning
                        // the core on yield_now. Unreachable under the sim
                        // scheduler: there `snooze` parks via the sim seam
                        // without ever advancing the backoff step, so the
                        // schedule stays deterministic.
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    } else {
                        backoff.snooze();
                    }
                }
                Err(e @ TrySubmitError::Shutdown(_)) => return Err(e),
            }
        }
    }

    /// Tickets accepted engine-wide so far (across all sessions).
    pub fn accepted(&self) -> u64 {
        self.shared.accepted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_spsc::channel;

    fn shared(
        lanes: usize,
        capacity: usize,
    ) -> (Arc<SubmitShared>, Vec<orthrus_spsc::Consumer<Submission>>) {
        let mut producers = Vec::new();
        let mut consumers = Vec::new();
        for _ in 0..lanes {
            let (p, c) = channel::<Submission>(capacity);
            producers.push(p);
            consumers.push(c);
        }
        (Arc::new(SubmitShared::new(producers)), consumers)
    }

    fn rmw(key: u64) -> Program {
        Program::Rmw { keys: vec![key] }
    }

    #[test]
    fn full_ring_backpressure_is_deterministic_and_lossless() {
        // One lane of capacity 4 (rings round up to powers of two):
        // exactly 4 submissions are accepted, the 5th returns Full with
        // the program intact, and the accepted-ticket count excludes it.
        let (s, mut consumers) = shared(1, 4);
        let session = Session::new(Arc::clone(&s));
        let mut tickets = Vec::new();
        for i in 0..4 {
            tickets.push(session.try_submit(rmw(i)).expect("ring has space"));
        }
        match session.try_submit(rmw(99)) {
            Err(TrySubmitError::Full(p)) => assert_eq!(p, rmw(99), "program handed back"),
            other => panic!("5th submission must backpressure, got {other:?}"),
        }
        assert_eq!(s.accepted(), 4, "rejected attempts must not mint tickets");
        // Every accepted ticket is in the ring, in order.
        for expect in &tickets {
            assert_eq!(consumers[0].try_pop().unwrap().ticket, *expect);
        }
        // Space freed: submission works again.
        assert!(session.try_submit(rmw(5)).is_ok());
    }

    #[test]
    fn hot_key_hint_routes_to_a_stable_lane() {
        let (s, consumers) = shared(4, 64);
        let session = Session::new(Arc::clone(&s));
        for _ in 0..12 {
            session.try_submit(rmw(7)).unwrap();
        }
        let occupied: Vec<usize> = consumers.iter().map(orthrus_spsc::Consumer::len).collect();
        assert_eq!(
            occupied.iter().sum::<usize>(),
            12,
            "all submissions landed somewhere"
        );
        assert_eq!(
            occupied.iter().filter(|&&n| n > 0).count(),
            1,
            "same hot key must always route to the same execution thread: {occupied:?}"
        );
    }

    #[test]
    fn hintless_programs_round_robin() {
        let (s, consumers) = shared(3, 64);
        let session = Session::new(Arc::clone(&s));
        for _ in 0..9 {
            session
                .try_submit(Program::Rmw { keys: vec![] })
                .expect("empty programs still route");
        }
        for c in &consumers {
            assert_eq!(c.len(), 3, "round-robin must spread hintless work");
        }
    }

    #[test]
    fn hintless_programs_with_footprints_route_by_footprint() {
        // Regression (ISSUE 9 satellite): routing once keyed on
        // `hot_key_hint` alone, so hint-less programs with a perfectly
        // known footprint (transfers, fused batches) round-robined — and
        // a partitioned front-end classifying by footprint would disagree
        // with the lane the session picked. The footprint fallback must
        // pin them to one deterministic lane, symmetric in argument order.
        let (s, consumers) = shared(4, 64);
        let session = Session::new(Arc::clone(&s));
        for i in 0..6 {
            let (from, to) = if i % 2 == 0 { (7, 3) } else { (3, 7) };
            let p = Program::Transfer {
                from,
                to,
                amount: 1,
            };
            assert_eq!(p.hot_key_hint(), None, "transfer must stay hint-less");
            session.try_submit(p).unwrap();
        }
        session
            .try_submit(Program::Fused {
                epoch: 1,
                parts: vec![Program::Adjust { key: 3, delta: 1 }],
            })
            .unwrap();
        let occupied: Vec<usize> = consumers.iter().map(orthrus_spsc::Consumer::len).collect();
        assert_eq!(occupied.iter().sum::<usize>(), 7);
        assert_eq!(
            occupied.iter().filter(|&&n| n > 0).count(),
            1,
            "footprint key 3 must pin every submission to one lane: {occupied:?}"
        );
    }

    #[test]
    fn close_fences_out_new_submissions() {
        let (s, consumers) = shared(2, 16);
        let session = Session::new(Arc::clone(&s));
        session.try_submit(rmw(1)).unwrap();
        s.close();
        match session.try_submit(rmw(2)) {
            Err(TrySubmitError::Shutdown(p)) => assert_eq!(p, rmw(2)),
            other => panic!("post-close submission must be refused, got {other:?}"),
        }
        match session.submit(rmw(3)) {
            Err(TrySubmitError::Shutdown(_)) => {}
            other => panic!("blocking submit must also refuse, got {other:?}"),
        }
        assert_eq!(s.accepted(), 1);
        assert_eq!(
            consumers
                .iter()
                .map(orthrus_spsc::Consumer::len)
                .sum::<usize>(),
            1
        );
    }

    #[test]
    fn batch_submit_accepts_everything_that_fits() {
        let (s, mut consumers) = shared(2, 16);
        let session = Session::new(Arc::clone(&s));
        // Hot keys pin lanes; hintless programs round-robin.
        let batch = vec![rmw(1), rmw(2), rmw(1), Program::Rmw { keys: vec![] }];
        let out = session.try_submit_batch(batch, Some(9));
        assert!(!out.shutdown);
        assert!(out.rejected.is_empty());
        assert_eq!(out.accepted.len(), 4);
        // Dense tickets: exactly 0..4 minted, each reported once.
        let mut ids: Vec<u64> = out.accepted.iter().map(|(_, t)| t.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(s.accepted(), 4);
        // Everything reached some ring, and same-hot-key submissions kept
        // their relative order within their lane.
        let mut seen = 0;
        for c in &mut consumers {
            while let Some(sub) = c.try_pop() {
                seen += 1;
                assert!(sub.ticket.0 < 4);
            }
        }
        assert_eq!(seen, 4);
    }

    #[test]
    fn batch_submit_hands_back_overflow_per_lane() {
        // One lane, capacity 4: a batch of 7 accepts 4 and rejects 3,
        // handing the exact programs back with their input indices.
        let (s, _consumers) = shared(1, 4);
        let session = Session::new(Arc::clone(&s));
        let batch: Vec<Program> = (0..7).map(rmw).collect();
        let out = session.try_submit_batch(batch, None);
        assert!(!out.shutdown);
        assert_eq!(out.accepted.len(), 4);
        assert_eq!(out.rejected.len(), 3);
        assert_eq!(s.accepted(), 4, "rejected programs must not mint tickets");
        for (i, p) in &out.rejected {
            assert_eq!(*p, rmw(*i as u64), "hand-back must preserve the program");
        }
    }

    #[test]
    fn batch_submit_after_close_reports_shutdown() {
        let (s, _consumers) = shared(2, 8);
        let session = Session::new(Arc::clone(&s));
        s.close();
        let out = session.try_submit_batch(vec![rmw(1), rmw(2)], Some(3));
        assert!(out.shutdown);
        assert_eq!(out.accepted.len(), 0);
        assert_eq!(out.rejected.len(), 2);
        assert_eq!(s.accepted(), 0);
    }

    #[test]
    fn owned_submissions_tag_the_owner_table() {
        let (s, _consumers) = shared(1, 8);
        let session = Session::new(Arc::clone(&s));
        let t = session.try_submit_owned(rmw(1), 42).unwrap();
        assert_eq!(session.take_owner(t), Some(42));
        assert_eq!(session.take_owner(t), None, "routing consumes the tag");
        let t2 = session.try_submit(rmw(2)).unwrap();
        assert_eq!(session.take_owner(t2), None, "un-owned stays untagged");
    }

    #[test]
    fn blocking_submit_waits_for_drain() {
        let (s, mut consumers) = shared(1, 2);
        let session = Session::new(Arc::clone(&s));
        session.try_submit(rmw(0)).unwrap();
        session.try_submit(rmw(1)).unwrap();
        let h = std::thread::spawn(move || session.submit(rmw(2)).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(consumers[0].try_pop().unwrap().ticket, Ticket(0));
        let t = h.join().unwrap();
        assert_eq!(t, Ticket(2));
        assert_eq!(s.accepted(), 3);
    }
}
