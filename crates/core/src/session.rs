//! Client sessions: the open-loop submission API.
//!
//! A [`Session`] is a cheap, cloneable handle a client (or an offered-load
//! driver) uses to push [`Program`]s into a running service-mode engine
//! ([`crate::OrthrusEngine::start`]). Submissions are routed to a
//! per-execution-thread ingest ring:
//!
//! - **by hot key** when the program exposes one
//!   ([`Program::hot_key_hint`]): all submissions contending on a key
//!   land on the same execution thread, so conflict-class admission can
//!   fuse them into single lock acquisitions exactly as it does for
//!   synthetic work;
//! - **round-robin** otherwise.
//!
//! The rings are bounded: a full ring is *backpressure*
//! ([`TrySubmitError::Full`] hands the program back), never silent loss —
//! every minted [`Ticket`] is owed a [`crate::source::Completion`].
//!
//! The producer side of each ring sits behind a mutex shared by all
//! sessions. That lock is deliberately **off the engine's hot path**: the
//! consumer side stays a pure latch-free SPSC drain on the execution
//! thread; only submitting clients contend, and only per-lane. The same
//! mutex doubles as the shutdown fence (see [`SubmitShared::close`]): a
//! submission that won the lock before close lands in the ring and will
//! be drained; one that loses sees `accepting == false` and is refused —
//! there is no window in which a ticket can be accepted yet missed by the
//! drain.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use orthrus_common::{fx_hash_u64, Backoff};
use orthrus_spsc::Producer;
use orthrus_txn::Program;
use parking_lot::Mutex;

use crate::source::{Submission, Ticket};

/// Why a submission was not accepted. Both variants hand the program
/// back so the caller can retry without cloning.
#[derive(Debug)]
pub enum TrySubmitError {
    /// The destination ingest ring is full — backpressure. Retry after
    /// the engine drains (or use the blocking [`Session::submit`]).
    Full(Program),
    /// The engine has begun shutting down; no new work is accepted.
    Shutdown(Program),
}

impl TrySubmitError {
    /// Recover the rejected program.
    pub fn into_program(self) -> Program {
        match self {
            TrySubmitError::Full(p) | TrySubmitError::Shutdown(p) => p,
        }
    }
}

impl std::fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySubmitError::Full(_) => write!(f, "ingest ring full (backpressure)"),
            TrySubmitError::Shutdown(_) => write!(f, "engine shutting down"),
        }
    }
}

/// Submission state shared by every session of one service-mode engine:
/// the ingest-ring producers (one per execution thread), the ticket
/// counter, and the accepting flag the shutdown fence flips.
pub(crate) struct SubmitShared {
    lanes: Vec<Mutex<Producer<Submission>>>,
    accepting: AtomicBool,
    /// Ticket-id mint, bumped only for *accepted* submissions (space is
    /// checked under the lane lock before minting), so ids are dense and
    /// the counter doubles as the conservation ledger completions are
    /// checked against.
    next_ticket: AtomicU64,
    round_robin: AtomicUsize,
}

impl SubmitShared {
    pub(crate) fn new(lanes: Vec<Producer<Submission>>) -> Self {
        assert!(!lanes.is_empty(), "validated by OrthrusConfig (n_exec ≥ 1)");
        SubmitShared {
            lanes: lanes.into_iter().map(Mutex::new).collect(),
            accepting: AtomicBool::new(true),
            next_ticket: AtomicU64::new(0),
            round_robin: AtomicUsize::new(0),
        }
    }

    /// Submissions accepted so far (each is owed exactly one completion;
    /// backpressured or post-shutdown attempts are not counted).
    pub(crate) fn accepted(&self) -> u64 {
        self.next_ticket.load(Ordering::Acquire)
    }

    /// The shutdown fence. After this returns, no further submission can
    /// land in any ingest ring: the flag flip happens-before the per-lane
    /// lock round, so a submitter that enqueued raced *before* the fence
    /// (its push is visible to the draining execution thread), and any
    /// later one observes `accepting == false` under the lane lock.
    pub(crate) fn close(&self) {
        self.accepting.store(false, Ordering::SeqCst);
        for lane in &self.lanes {
            drop(lane.lock());
        }
    }
}

/// A client handle into a running service-mode engine. Clone freely —
/// sessions share the engine's submission state and are `Send`; each
/// clone may live on its own client thread.
#[derive(Clone)]
pub struct Session {
    shared: Arc<SubmitShared>,
}

impl Session {
    pub(crate) fn new(shared: Arc<SubmitShared>) -> Self {
        Session { shared }
    }

    /// Submit without blocking. Routes by the program's
    /// [`Program::hot_key_hint`] (round-robin when it has none), mints a
    /// [`Ticket`] on success, and returns the program back inside
    /// [`TrySubmitError::Full`] when the destination ring is full.
    pub fn try_submit(&self, program: Program) -> Result<Ticket, TrySubmitError> {
        let shared = &self.shared;
        let lane = match program.hot_key_hint() {
            Some(key) => (fx_hash_u64(key) % shared.lanes.len() as u64) as usize,
            None => shared.round_robin.fetch_add(1, Ordering::Relaxed) % shared.lanes.len(),
        };
        let mut producer = shared.lanes[lane].lock();
        if !shared.accepting.load(Ordering::SeqCst) {
            return Err(TrySubmitError::Shutdown(program));
        }
        // Space check before minting keeps ticket ids dense (= accepted
        // count). Under the lane lock the occupancy can only shrink (the
        // execution thread drains concurrently), so the push cannot fail.
        if producer.len() >= producer.capacity() {
            return Err(TrySubmitError::Full(program));
        }
        let ticket = Ticket(shared.next_ticket.fetch_add(1, Ordering::AcqRel));
        producer
            .try_push(Submission {
                ticket,
                program,
                submitted: Instant::now(),
            })
            .unwrap_or_else(|_| unreachable!("space checked under the lane lock"));
        Ok(ticket)
    }

    /// Submit, backing off while the destination ring is full (the
    /// open-loop driver's saturation behaviour: offered load beyond
    /// engine capacity queues here). Errors only on shutdown.
    ///
    /// Completions should be drained (`EngineHandle::drain_completions`)
    /// alongside sustained submission: the completion rings are the
    /// bounded fast path, and a client that lags parks its completions
    /// in engine-side overflow buffers — never lost, never wedging the
    /// engine, but memory grows with the lag until the client drains.
    pub fn submit(&self, mut program: Program) -> Result<Ticket, TrySubmitError> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_submit(program) {
                Ok(t) => return Ok(t),
                Err(TrySubmitError::Full(p)) => {
                    program = p;
                    backoff.snooze();
                }
                Err(e @ TrySubmitError::Shutdown(_)) => return Err(e),
            }
        }
    }

    /// Tickets accepted engine-wide so far (across all sessions).
    pub fn accepted(&self) -> u64 {
        self.shared.accepted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_spsc::channel;

    fn shared(
        lanes: usize,
        capacity: usize,
    ) -> (Arc<SubmitShared>, Vec<orthrus_spsc::Consumer<Submission>>) {
        let mut producers = Vec::new();
        let mut consumers = Vec::new();
        for _ in 0..lanes {
            let (p, c) = channel::<Submission>(capacity);
            producers.push(p);
            consumers.push(c);
        }
        (Arc::new(SubmitShared::new(producers)), consumers)
    }

    fn rmw(key: u64) -> Program {
        Program::Rmw { keys: vec![key] }
    }

    #[test]
    fn full_ring_backpressure_is_deterministic_and_lossless() {
        // One lane of capacity 4 (rings round up to powers of two):
        // exactly 4 submissions are accepted, the 5th returns Full with
        // the program intact, and the accepted-ticket count excludes it.
        let (s, mut consumers) = shared(1, 4);
        let session = Session::new(Arc::clone(&s));
        let mut tickets = Vec::new();
        for i in 0..4 {
            tickets.push(session.try_submit(rmw(i)).expect("ring has space"));
        }
        match session.try_submit(rmw(99)) {
            Err(TrySubmitError::Full(p)) => assert_eq!(p, rmw(99), "program handed back"),
            other => panic!("5th submission must backpressure, got {other:?}"),
        }
        assert_eq!(s.accepted(), 4, "rejected attempts must not mint tickets");
        // Every accepted ticket is in the ring, in order.
        for expect in &tickets {
            assert_eq!(consumers[0].try_pop().unwrap().ticket, *expect);
        }
        // Space freed: submission works again.
        assert!(session.try_submit(rmw(5)).is_ok());
    }

    #[test]
    fn hot_key_hint_routes_to_a_stable_lane() {
        let (s, consumers) = shared(4, 64);
        let session = Session::new(Arc::clone(&s));
        for _ in 0..12 {
            session.try_submit(rmw(7)).unwrap();
        }
        let occupied: Vec<usize> = consumers.iter().map(orthrus_spsc::Consumer::len).collect();
        assert_eq!(
            occupied.iter().sum::<usize>(),
            12,
            "all submissions landed somewhere"
        );
        assert_eq!(
            occupied.iter().filter(|&&n| n > 0).count(),
            1,
            "same hot key must always route to the same execution thread: {occupied:?}"
        );
    }

    #[test]
    fn hintless_programs_round_robin() {
        let (s, consumers) = shared(3, 64);
        let session = Session::new(Arc::clone(&s));
        for _ in 0..9 {
            session
                .try_submit(Program::Rmw { keys: vec![] })
                .expect("empty programs still route");
        }
        for c in &consumers {
            assert_eq!(c.len(), 3, "round-robin must spread hintless work");
        }
    }

    #[test]
    fn close_fences_out_new_submissions() {
        let (s, consumers) = shared(2, 16);
        let session = Session::new(Arc::clone(&s));
        session.try_submit(rmw(1)).unwrap();
        s.close();
        match session.try_submit(rmw(2)) {
            Err(TrySubmitError::Shutdown(p)) => assert_eq!(p, rmw(2)),
            other => panic!("post-close submission must be refused, got {other:?}"),
        }
        match session.submit(rmw(3)) {
            Err(TrySubmitError::Shutdown(_)) => {}
            other => panic!("blocking submit must also refuse, got {other:?}"),
        }
        assert_eq!(s.accepted(), 1);
        assert_eq!(
            consumers
                .iter()
                .map(orthrus_spsc::Consumer::len)
                .sum::<usize>(),
            1
        );
    }

    #[test]
    fn blocking_submit_waits_for_drain() {
        let (s, mut consumers) = shared(1, 2);
        let session = Session::new(Arc::clone(&s));
        session.try_submit(rmw(0)).unwrap();
        session.try_submit(rmw(1)).unwrap();
        let h = std::thread::spawn(move || session.submit(rmw(2)).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(consumers[0].try_pop().unwrap().ticket, Ticket(0));
        let t = h.join().unwrap();
        assert_eq!(t, Ticket(2));
        assert_eq!(s.accepted(), 3);
    }
}
