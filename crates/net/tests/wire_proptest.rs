//! Property tests for the wire codec: whatever a well-behaved peer
//! encodes must decode identically, no matter how TCP segments the
//! bytes — and a payload-corrupted frame must be skipped, never
//! fabricated, never fatal.

use proptest::prelude::*;

use orthrus_net::codec::{encode_request, encode_response, CompletionMsg, Frame, FrameDecoder};
use orthrus_txn::{NewOrderInput, OrderLineInput, Program};

/// An arbitrary mixed batch: key programs of both lock modes plus a
/// TPC-C NewOrder (nested input struct — the deepest encoding).
fn program_strategy() -> impl Strategy<Value = Program> {
    let keys = || proptest::collection::vec(0u64..10_000, 0..8);
    let lines = proptest::collection::vec(
        (0u32..1000, 0u32..8, 1u32..10).prop_map(|(i_id, supply_w, qty)| OrderLineInput {
            i_id,
            supply_w,
            qty,
        }),
        1..6,
    );
    prop_oneof![
        keys().prop_map(|keys| Program::ReadOnly { keys }),
        keys().prop_map(|keys| Program::Rmw { keys }),
        (0u32..8, 0u32..10, 0u32..3000, lines)
            .prop_map(|(w, d, c, lines)| { Program::NewOrder(NewOrderInput { w, d, c, lines }) }),
    ]
}

fn batch_strategy() -> impl Strategy<Value = Vec<(u64, Program)>> {
    proptest::collection::vec(
        (proptest::arbitrary::any::<u64>(), program_strategy()),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Several request frames, fed to the decoder in arbitrary-size
    /// chunks (TCP owes us bytes, not frames), decode to exactly the
    /// batches that were encoded, in order.
    #[test]
    fn request_frames_survive_arbitrary_segmentation(
        batches in proptest::collection::vec(batch_strategy(), 1..5),
        chunk in 1usize..97,
    ) {
        let mut wire = Vec::new();
        for b in &batches {
            encode_request(b, &mut wire);
        }
        let mut d = FrameDecoder::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            d.feed(piece);
            while let Some(f) = d.next_frame().expect("valid stream never desyncs") {
                match f {
                    Frame::Request(reqs) => decoded.push(reqs),
                    Frame::Response(_) => panic!("encoded requests only"),
                }
            }
        }
        prop_assert_eq!(decoded, batches);
        prop_assert_eq!(d.bad_frames(), 0);
        prop_assert_eq!(d.pending_bytes(), 0);
    }

    /// Same property for the response direction.
    #[test]
    fn response_frames_survive_arbitrary_segmentation(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::arbitrary::any::<u64>(), proptest::arbitrary::any::<u64>())
                    .prop_map(|(req_id, latency_ns)| CompletionMsg { req_id, latency_ns }),
                1..50,
            ),
            1..5,
        ),
        chunk in 1usize..97,
    ) {
        let mut wire = Vec::new();
        for b in &batches {
            encode_response(b, &mut wire);
        }
        let mut d = FrameDecoder::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            d.feed(piece);
            while let Some(f) = d.next_frame().expect("valid stream never desyncs") {
                match f {
                    Frame::Response(msgs) => decoded.push(msgs),
                    Frame::Request(_) => panic!("encoded responses only"),
                }
            }
        }
        prop_assert_eq!(decoded, batches);
    }

    /// Corrupt one payload byte of the first frame: the CRC must catch
    /// it (skip + count), and every following frame still decodes —
    /// intact framing means payload damage never desyncs the stream.
    #[test]
    fn payload_corruption_skips_one_frame_and_keeps_the_stream(
        first in batch_strategy(),
        second in batch_strategy(),
        flip_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut wire = Vec::new();
        encode_request(&first, &mut wire);
        let first_len = wire.len();
        // Flip one bit somewhere in the first frame's payload (past the
        // 12-byte header, which length-tests cover separately).
        let payload_len = first_len - 12;
        let victim = 12 + (flip_seed as usize % payload_len);
        wire[victim] ^= 1 << (flip_seed % 8) as u8;
        encode_request(&second, &mut wire);

        let mut d = FrameDecoder::new();
        d.feed(&wire);
        let mut decoded = Vec::new();
        while let Some(f) = d.next_frame().expect("payload damage is never fatal") {
            match f {
                Frame::Request(reqs) => decoded.push(reqs),
                Frame::Response(_) => panic!("requests only"),
            }
        }
        prop_assert_eq!(d.bad_frames(), 1);
        prop_assert_eq!(decoded, vec![second]);
    }
}
