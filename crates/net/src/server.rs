//! The TCP front door: listener + per-connection loops over the engine.
//!
//! Thread layout mirrors the engine's single-drainer invariant:
//!
//! - **`netlisten`** owns the [`EngineHandle`]. It accepts connections
//!   (non-blocking) and is the *single pump*: it drains the engine's
//!   completion rings and [`CompletionHub::route`]s each completion to
//!   the owning connection's [`ClientRx`] ring.
//! - **`netconn{i}`** (one per accepted connection, numbered in accept
//!   order) runs the connection state machine: decode request frames,
//!   submit through a cloned [`Session`] with
//!   [`Session::try_submit_batch`] — one session push per wire batch —
//!   drain its own `ClientRx`, and flush response frames, one write
//!   syscall per flush, sized by the [`AdaptiveBatcher`].
//!
//! Backpressure is end-to-end: when the engine's ingest rings reject a
//! batch, the rejected programs park in a bounded per-connection queue
//! and the connection **stops reading its socket** until they drain.
//! The kernel's receive buffer fills, the TCP window closes, and the
//! client's `write` blocks — ring-full pressure mapped onto TCP flow
//! control with no RST and no unbounded server-side buffering.
//!
//! Both thread kinds enroll in the deterministic-simulation seam under
//! their thread names, so `orthrus-sim` can interleave them with the
//! engine's CC/exec threads. Socket readiness itself is OS timing the
//! scheduler cannot capture, so net sim runs assert *convergence and
//! conservation* (every accepted ticket answered or accounted), not
//! trace-hash bit-identity like the in-process corpus.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use orthrus_common::failpoint::{global as failpoints, FailAction};
use orthrus_common::{sim, Backoff, ThreadStats};
use orthrus_core::{ClientRx, Completion, CompletionHub, EngineHandle, Session};
use orthrus_txn::Program;

use crate::batch::AdaptiveBatcher;
use crate::codec::{encode_response, CompletionMsg, Frame, FrameDecoder, WireError};

/// Failpoint hit on every socket read in the connection loop.
/// `Err` injects an I/O error (connection teardown path); `Torn(keep)`
/// delivers only the first `keep` bytes of the read — the stream then
/// desyncs and the decoder's fatal-desync path closes the connection.
pub const FP_NET_READ: &str = "net.read";

/// How long a closing connection waits for in-flight tickets to
/// complete before giving up and orphaning them.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Max parked programs re-offered to the engine per loop iteration
/// (see the retry step in [`ConnState::run`]).
const RETRY_CHUNK: usize = 64;

/// Front-end tuning. Every field has an `ORTHRUS_NET_*` knob in the
/// harness (see `orthrus-harness::config`).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listen address; port 0 picks an ephemeral port (see
    /// [`NetServer::addr`]).
    pub addr: SocketAddr,
    /// Adaptive batcher floor (frames flush at least this full, or on
    /// idle).
    pub batch_min: usize,
    /// Adaptive batcher ceiling.
    pub batch_max: usize,
    /// Per-connection completion-ring capacity (rounded up to a power
    /// of two by the hub).
    pub client_ring: usize,
    /// Socket read buffer size per connection.
    pub read_buf: usize,
    /// Max decoded-but-unsubmitted programs a connection holds before
    /// it stops reading its socket (the ring-full → TCP flow-control
    /// mapping).
    pub backpressure_cap: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".parse().expect("static addr"),
            batch_min: 1,
            batch_max: 256,
            client_ring: 1024,
            read_buf: 64 * 1024,
            backpressure_cap: 4096,
        }
    }
}

impl NetConfig {
    /// Parse and set the listen address.
    pub fn with_addr<A: ToSocketAddrs>(mut self, addr: A) -> std::io::Result<Self> {
        self.addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "no address"))?;
        Ok(self)
    }
}

/// A running TCP front-end. Owns the engine (via the listener thread)
/// until [`shutdown`](Self::shutdown) hands it back.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    hub: Arc<CompletionHub>,
    session: Session,
    listener: Option<JoinHandle<(EngineHandle, ThreadStats)>>,
}

impl NetServer {
    /// Bind, spawn the listener thread, and start serving. The engine
    /// handle moves into the listener (single-drainer invariant); get it
    /// back from [`shutdown`](Self::shutdown).
    pub fn start(handle: EngineHandle, cfg: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let session = handle.session();
        let hub = Arc::new(CompletionHub::new(session.clone()));

        let jh = {
            let stop = Arc::clone(&stop);
            let hub = Arc::clone(&hub);
            let session = session.clone();
            std::thread::Builder::new()
                .name("netlisten".into())
                .spawn(move || listen_loop(listener, handle, session, hub, stop, cfg))
                .expect("spawn netlisten")
        };

        Ok(NetServer {
            addr,
            stop,
            hub,
            session,
            listener: Some(jh),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloned in-process session — the harness fast path still works
    /// alongside the TCP front door (its completions count as *unowned*
    /// in the hub; they are drained and dropped by the pump).
    pub fn session(&self) -> Session {
        self.session.clone()
    }

    /// The completion router, for conservation accounting
    /// (`routed + orphaned + unowned` = completions drained).
    pub fn hub(&self) -> &CompletionHub {
        &self.hub
    }

    /// Stop accepting, drain in-flight work (bounded by a deadline),
    /// join every thread, and hand back the engine plus the merged
    /// network-side [`ThreadStats`]. Does **not** shut the engine down —
    /// that stays the caller's call.
    pub fn shutdown(mut self) -> (EngineHandle, ThreadStats) {
        self.stop.store(true, Ordering::SeqCst);
        let jh = self.listener.take().expect("shutdown is once");
        jh.join().expect("netlisten panicked")
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if let Some(jh) = self.listener.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = jh.join();
        }
    }
}

/// Accept + pump loop; owns the engine handle for its whole life.
fn listen_loop(
    listener: TcpListener,
    mut handle: EngineHandle,
    session: Session,
    hub: Arc<CompletionHub>,
    stop: Arc<AtomicBool>,
    cfg: NetConfig,
) -> (EngineHandle, ThreadStats) {
    let _sim = sim::enroll("netlisten");
    let conn_stats: Arc<parking_lot::Mutex<ThreadStats>> = Arc::default();
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn = 0usize;
    let mut drained: Vec<Completion> = Vec::new();
    let mut backoff = Backoff::new();

    loop {
        let mut progress = false;

        if !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    progress = true;
                    let name = format!("netconn{next_conn}");
                    next_conn += 1;
                    let rx = hub.register(cfg.client_ring);
                    let conn = ConnState::new(stream, session.clone(), rx, &cfg);
                    let hub = Arc::clone(&hub);
                    let stop = Arc::clone(&stop);
                    let stats = Arc::clone(&conn_stats);
                    let jh = std::thread::Builder::new()
                        .name(name.clone())
                        .spawn(move || {
                            let _sim = sim::enroll(&name);
                            let local = conn.run(&stop, &hub);
                            stats.lock().merge(&local);
                        })
                        .expect("spawn netconn");
                    conns.push(jh);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (EMFILE and friends):
                    // back off and keep serving existing connections.
                }
            }
        }

        drained.clear();
        if handle.drain_completions(&mut drained) > 0 {
            hub.route(&drained);
            progress = true;
        }

        if stop.load(Ordering::Relaxed) && conns.iter().all(|jh| jh.is_finished()) {
            break;
        }
        if progress {
            backoff.reset();
        } else if backoff.is_yielding() {
            // Idle means no completions and no connection attempts — a
            // socket-timescale lull. Yield-looping here would starve the
            // engine threads on an oversubscribed host (every wire
            // thread burning its quantum re-checking empty rings), so
            // sleep once the spin budget is spent. Unreachable when the
            // sim scheduler has this thread enrolled: `snooze` parks
            // via the sim seam without advancing the backoff step.
            std::thread::sleep(Duration::from_micros(100));
        } else {
            backoff.snooze();
        }
    }

    for jh in conns {
        let _ = jh.join();
    }
    // Final pump: route anything the last connections left behind so the
    // hub's conservation counters (orphaned) balance.
    drained.clear();
    if handle.drain_completions(&mut drained) > 0 {
        hub.route(&drained);
    }
    let stats = conn_stats.lock().clone();
    (handle, stats)
}

/// Everything one connection thread owns.
struct ConnState {
    stream: TcpStream,
    session: Session,
    rx: ClientRx,
    batcher: AdaptiveBatcher,
    decoder: FrameDecoder,
    /// Decoded but not yet accepted by the engine (ring-full
    /// backpressure parks requests here; bounded by `backpressure_cap`,
    /// beyond which the socket goes unread).
    pending: VecDeque<(u64, Program)>,
    /// Accepted tickets awaiting completion, mapped back to the
    /// client's request ids.
    inflight: HashMap<u64, u64>,
    /// Completions translated to wire messages, awaiting a flush.
    outbox: Vec<CompletionMsg>,
    /// Encoded frames awaiting (possibly partial) socket writes.
    wbuf: Vec<u8>,
    wpos: usize,
    rdbuf: Vec<u8>,
    backpressure_cap: usize,
    stats: ThreadStats,
}

impl ConnState {
    fn new(stream: TcpStream, session: Session, rx: ClientRx, cfg: &NetConfig) -> Self {
        let _ = stream.set_nodelay(true);
        // Blocking socket with a short read timeout: the kernel wakes
        // this thread the moment request bytes arrive (instead of the
        // thread polling a non-blocking fd on a sleep cadence), and a
        // timed-out read doubles as the idle wait. The write timeout
        // bounds how long a stalled peer can pin the thread mid-flush;
        // the partial-write buffer keeps the tail for the next pass.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
        ConnState {
            stream,
            session,
            rx,
            batcher: AdaptiveBatcher::new(cfg.batch_min, cfg.batch_max),
            decoder: FrameDecoder::new(),
            pending: VecDeque::new(),
            inflight: HashMap::new(),
            outbox: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            rdbuf: vec![0u8; cfg.read_buf.max(512)],
            backpressure_cap: cfg.backpressure_cap.max(1),
            stats: ThreadStats::default(),
        }
    }

    /// The connection state machine. Returns this connection's stats.
    fn run(mut self, stop: &AtomicBool, hub: &CompletionHub) -> ThreadStats {
        let client_id = self.rx.id();
        let mut backoff = Backoff::new();
        let mut comp: Vec<Completion> = Vec::new();
        // Set on peer close, fatal I/O error, or wire desync: stop
        // reading, flush what we can, exit.
        let mut dead = false;
        // Set when the engine refuses new work (shutdown): requests
        // still parked in `pending` will never be answered; drop them
        // and let the closing socket tell the client.
        let mut engine_closed = false;
        let mut closing_since: Option<Instant> = None;

        loop {
            let mut progress = false;

            // 1. Retry backpressured work first: FIFO per connection.
            // Offer only the head of the queue — the engine can accept
            // at most a ring's worth anyway, and re-offering thousands
            // of parked programs per iteration (unzip, per-lane
            // attempts, re-queue) burns the submission path's CPU in
            // proportion to the backlog instead of the acceptance.
            // A dead socket still drains its pending queue: work that
            // made it off the wire before the disconnect is owed a
            // ticket (its completions will be orphaned, not lost).
            if !engine_closed && !self.pending.is_empty() {
                let chunk = self.pending.len().min(RETRY_CHUNK);
                let (ids, programs): (Vec<u64>, Vec<Program>) = self.pending.drain(..chunk).unzip();
                let out = self.session.try_submit_batch(programs, Some(client_id));
                engine_closed = out.shutdown;
                progress |= !out.accepted.is_empty();
                for (idx, ticket) in out.accepted {
                    self.inflight.insert(ticket.0, ids[idx]);
                }
                let mut rejected = out.rejected;
                rejected.sort_by_key(|(idx, _)| *idx);
                // Back to the *front* (reversed, preserving order): the
                // unoffered tail is still parked behind this chunk.
                for (idx, program) in rejected.into_iter().rev() {
                    self.pending.push_front((ids[idx], program));
                }
            }

            // 2. Read the socket — but only while not backpressured:
            // parked work closes the TCP window instead of growing an
            // unbounded queue. The read blocks up to its 1 ms timeout,
            // so a quiet socket doubles as this iteration's idle wait.
            let mut waited = false;
            let closing = dead || engine_closed || stop.load(Ordering::Relaxed);
            if !closing && self.pending.len() < self.backpressure_cap {
                match self.read_socket() {
                    ReadOutcome::Bytes(n) => {
                        self.stats.net_read_calls += 1;
                        self.decoder.feed(&self.rdbuf[..n]);
                        progress = true;
                    }
                    ReadOutcome::WouldBlock => waited = true,
                    ReadOutcome::Closed => dead = true,
                }
                loop {
                    match self.decoder.next_frame() {
                        Ok(Some(Frame::Request(reqs))) => {
                            self.stats.net_rx_frames += 1;
                            self.stats.net_rx_txns += reqs.len() as u64;
                            self.stats.net_rx_batch.record(reqs.len() as u64);
                            self.pending.extend(reqs);
                        }
                        Ok(Some(Frame::Response(_))) => {
                            // Clients don't send responses; treat as a
                            // malformed-but-framed message and move on.
                            self.stats.net_bad_frames += 1;
                        }
                        Ok(None) => break,
                        Err(WireError::Desync(_)) => {
                            dead = true;
                            break;
                        }
                    }
                }
            }

            // 3. Drain completions for our tickets into the outbox.
            comp.clear();
            let n = self.rx.drain_into(&mut comp, 4096);
            if n > 0 {
                progress = true;
                for c in &comp {
                    // Owner tags are inserted before the ring push, and
                    // `inflight` before this thread's next drain, so a
                    // routed completion always resolves.
                    if let Some(req_id) = self.inflight.remove(&c.ticket.0) {
                        self.outbox.push(CompletionMsg {
                            req_id,
                            latency_ns: c.latency_ns,
                        });
                    }
                }
            }

            // 4. Flush when the outbox reaches the adaptive setpoint, or
            // when the connection went idle (don't sit on latency). A
            // dead socket skips the flush — the drained completions are
            // already accounted (routed) and the writes can only fail.
            if !dead
                && !self.outbox.is_empty()
                && (self.outbox.len() >= self.batcher.size() || !progress)
            {
                self.flush_outbox();
                progress = true;
            }

            // 5. Push queued bytes out; partial writes keep their tail.
            if !dead && self.wpos < self.wbuf.len() {
                match self.stream.write(&self.wbuf[self.wpos..]) {
                    Ok(0) => dead = true,
                    Ok(n) => {
                        self.stats.net_write_calls += 1;
                        self.wpos += n;
                        if self.wpos == self.wbuf.len() {
                            self.wbuf.clear();
                            self.wpos = 0;
                        }
                        progress = true;
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => dead = true,
                }
            }

            // 6. Exit policy. A dead socket exits as soon as every
            // request received before the disconnect has been handed to
            // the engine (replies have nowhere to go, but accepted work
            // must be accounted — the hub orphans those completions); a
            // graceful close waits — bounded — for in-flight tickets so
            // the client gets its answers.
            if dead && self.pending.is_empty() {
                break;
            }
            let closing = engine_closed || stop.load(Ordering::Relaxed);
            if closing {
                let deadline_passed = match closing_since {
                    None => {
                        closing_since = Some(Instant::now());
                        false
                    }
                    Some(t) => t.elapsed() > DRAIN_DEADLINE,
                };
                let drained = self.pending.is_empty()
                    && self.inflight.is_empty()
                    && self.outbox.is_empty()
                    && self.wpos >= self.wbuf.len();
                if drained || deadline_passed {
                    break;
                }
                if engine_closed && !self.pending.is_empty() {
                    // These can never be accepted; the closed socket is
                    // the client's (only) signal.
                    self.pending.clear();
                }
            }

            if progress {
                backoff.reset();
            } else if !waited {
                // Idle, and the socket read didn't block this iteration
                // (backpressured or closing). Sleep rather than
                // yield-loop once the spin budget is spent — with many
                // idle connections on few cores, spinning wire threads
                // otherwise steal the quantum from the CC/exec threads
                // doing the actual work (measured: 8 idle loopback
                // connections cost >2× throughput on one core).
                if backoff.is_yielding() {
                    std::thread::sleep(Duration::from_micros(100));
                } else {
                    backoff.snooze();
                }
            }
        }

        // Unregister *before* returning: completions for tickets still
        // in flight will be counted as orphaned by the pump, keeping
        // per-connection conservation auditable.
        self.stats.net_bad_frames += self.decoder.bad_frames();
        hub.unregister(client_id);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.stats
    }

    fn read_socket(&mut self) -> ReadOutcome {
        match self.stream.read(&mut self.rdbuf) {
            Ok(0) => ReadOutcome::Closed,
            Ok(mut n) => {
                match failpoints().hit(FP_NET_READ) {
                    Some(FailAction::Err) => return ReadOutcome::Closed,
                    Some(FailAction::Torn(keep)) => n = n.min(keep as usize),
                    Some(FailAction::Maybe(_)) | None => {}
                }
                if n == 0 {
                    ReadOutcome::WouldBlock
                } else {
                    ReadOutcome::Bytes(n)
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                ReadOutcome::WouldBlock
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => ReadOutcome::WouldBlock,
            Err(_) => ReadOutcome::Closed,
        }
    }

    /// Encode the whole outbox as response frames (chunked at the
    /// batcher ceiling) and hand the bytes to the write buffer. One
    /// flush = one frame per chunk, observed by the batcher.
    fn flush_outbox(&mut self) {
        // Compact the already-sent prefix so wbuf doesn't grow forever.
        if self.wpos > 0 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        let cap = self.batcher.size().max(1);
        for chunk in self.outbox.chunks(cap) {
            encode_response(chunk, &mut self.wbuf);
            self.stats.net_tx_frames += 1;
            self.stats.net_tx_completions += chunk.len() as u64;
            self.stats.net_tx_batch.record(chunk.len() as u64);
        }
        // Steer on total flush occupancy: what mattered was how much
        // work accumulated between flushes, not the per-frame chunking.
        self.batcher.observe(self.outbox.len());
        self.outbox.clear();
    }
}

enum ReadOutcome {
    Bytes(usize),
    WouldBlock,
    Closed,
}
