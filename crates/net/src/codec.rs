//! The wire protocol: length-prefixed, CRC'd, versioned frames.
//!
//! The framing reuses the command log's idioms
//! (`orthrus_storage::log`): a little-endian header carrying an
//! explicit payload length, a CRC-32 (the same vendored IEEE table) over
//! the payload, and a version byte so future protocol revisions can
//! coexist on one port. Programs inside request payloads use the shared
//! [`orthrus_txn::codec`] encoding — the same bytes the command log
//! writes.
//!
//! ```text
//! frame   := magic(2, LE "ON") ver(1) kind(1) len(4, LE) crc(4, LE) payload(len)
//! request := count(4) { req_id(8) program }*
//! response:= count(4) { req_id(8) latency_ns(8) }*
//! ```
//!
//! ## Rejection policy (desync-free)
//!
//! The header itself has no checksum; its integrity check is the magic.
//! A frame whose header *is* intact but whose version is unknown, whose
//! CRC mismatches, or whose payload fails to parse is **skipped whole**
//! (`len` is trusted once the magic matches) and counted — the stream
//! stays usable, later frames decode normally. A bad magic or an
//! implausible length means framing itself is lost; that is fatal
//! ([`WireError::Desync`]) and the connection must close — resyncing a
//! byte stream with no record markers would be guesswork.

use orthrus_storage::log::crc32;
use orthrus_txn::codec::{decode_program, encode_program, Reader};
use orthrus_txn::Program;

/// First two bytes of every frame ("Orthrus Net").
pub const FRAME_MAGIC: [u8; 2] = *b"ON";
/// Current protocol version.
pub const WIRE_VERSION: u8 = 1;
/// Frame kind: client → server batch of requests.
pub const KIND_REQUEST: u8 = 1;
/// Frame kind: server → client batch of completions.
pub const KIND_RESPONSE: u8 = 2;
/// Header bytes before the payload.
pub const HEADER_BYTES: usize = 12;
/// Sanity cap on one frame's payload: a larger length prefix is treated
/// as lost framing, not as an allocation request (same rationale as the
/// command log's record cap).
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// One completed request as it travels back over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionMsg {
    /// Client-chosen correlation id from the request.
    pub req_id: u64,
    /// Submit → commit latency measured by the engine.
    pub latency_ns: u64,
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// `(req_id, program)` pairs, in wire order.
    Request(Vec<(u64, Program)>),
    Response(Vec<CompletionMsg>),
}

/// Fatal stream errors (non-fatal corruption is *counted*, not raised —
/// see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Framing lost: bad magic or implausible length. Close the stream.
    Desync(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Desync(msg) => write!(f, "wire desync: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_header(kind: u8, payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encode one request frame carrying a whole batch of programs.
pub fn encode_request(reqs: &[(u64, Program)], out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(16 * reqs.len() + 4);
    payload.extend_from_slice(&(reqs.len() as u32).to_le_bytes());
    for (req_id, program) in reqs {
        payload.extend_from_slice(&req_id.to_le_bytes());
        encode_program(program, &mut payload);
    }
    put_header(KIND_REQUEST, &payload, out);
}

/// Encode one response frame carrying a batch of completions.
pub fn encode_response(resps: &[CompletionMsg], out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(16 * resps.len() + 4);
    payload.extend_from_slice(&(resps.len() as u32).to_le_bytes());
    for r in resps {
        payload.extend_from_slice(&r.req_id.to_le_bytes());
        payload.extend_from_slice(&r.latency_ns.to_le_bytes());
    }
    put_header(KIND_RESPONSE, &payload, out);
}

fn parse_request(payload: &[u8]) -> Option<Vec<(u64, Program)>> {
    let mut r = Reader::new(payload);
    let n = r.u32().ok()?;
    let mut reqs = Vec::with_capacity((n as usize).min(4096));
    for _ in 0..n {
        let req_id = r.u64().ok()?;
        let program = decode_program(&mut r).ok()?;
        reqs.push((req_id, program));
    }
    (r.remaining() == 0).then_some(reqs)
}

fn parse_response(payload: &[u8]) -> Option<Vec<CompletionMsg>> {
    let mut r = Reader::new(payload);
    let n = r.u32().ok()?;
    let mut resps = Vec::with_capacity((n as usize).min(4096));
    for _ in 0..n {
        resps.push(CompletionMsg {
            req_id: r.u64().ok()?,
            latency_ns: r.u64().ok()?,
        });
    }
    (r.remaining() == 0).then_some(resps)
}

/// Incremental frame decoder over a byte stream. Feed it whatever a
/// socket read produced; pop whole frames as they complete. Torn frames
/// (header or payload still in flight) simply wait for more bytes.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily to amortize the memmove.
    pos: usize,
    bad_frames: u64,
}

impl FrameDecoder {
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append raw stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: the common case keeps the buffer at one
        // in-flight frame, not the whole connection history.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed (torn-frame tail).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Frames skipped for non-fatal corruption (bad version, bad CRC,
    /// unparseable payload) since construction.
    pub fn bad_frames(&self) -> u64 {
        self.bad_frames
    }

    /// Decode the next complete frame: `Ok(Some)` on success, `Ok(None)`
    /// when more bytes are needed, `Err` when framing is lost (close the
    /// stream). Corrupt-but-framed messages are skipped and counted, so
    /// one call may consume several wire frames before returning.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        loop {
            let avail = &self.buf[self.pos..];
            if avail.len() < HEADER_BYTES {
                return Ok(None);
            }
            if avail[0..2] != FRAME_MAGIC {
                return Err(WireError::Desync(format!(
                    "bad magic {:02x}{:02x}",
                    avail[0], avail[1]
                )));
            }
            let ver = avail[2];
            let kind = avail[3];
            let len = u32::from_le_bytes(avail[4..8].try_into().unwrap());
            let crc = u32::from_le_bytes(avail[8..12].try_into().unwrap());
            if len > MAX_PAYLOAD {
                return Err(WireError::Desync(format!("implausible length {len}")));
            }
            if avail.len() < HEADER_BYTES + len as usize {
                return Ok(None); // torn: wait for the rest
            }
            let payload = &avail[HEADER_BYTES..HEADER_BYTES + len as usize];
            self.pos += HEADER_BYTES + len as usize;
            if ver != WIRE_VERSION || crc32(payload) != crc {
                self.bad_frames += 1;
                continue; // skipped whole; the stream stays in sync
            }
            let parsed = match kind {
                KIND_REQUEST => parse_request(payload).map(Frame::Request),
                KIND_RESPONSE => parse_response(payload).map(Frame::Response),
                _ => None,
            };
            match parsed {
                Some(frame) => return Ok(Some(frame)),
                None => {
                    self.bad_frames += 1;
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rmw(key: u64) -> Program {
        Program::Rmw { keys: vec![key] }
    }

    fn sample_batch(n: u64) -> Vec<(u64, Program)> {
        (0..n).map(|i| (i * 7, rmw(i))).collect()
    }

    #[test]
    fn request_roundtrips_through_the_decoder() {
        let reqs = sample_batch(5);
        let mut wire = Vec::new();
        encode_request(&reqs, &mut wire);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.next_frame().unwrap(), Some(Frame::Request(reqs)));
        assert_eq!(d.next_frame().unwrap(), None);
        assert_eq!(d.bad_frames(), 0);
    }

    /// The partitioned front end routes each wire request by its planned
    /// footprint *before* lane selection, so the hint-less partition-
    /// layer variants (transfers, adjusts, fused epoch batches) must
    /// survive the frame codec exactly — a truncated key set would
    /// silently reroute a program to the wrong partition.
    #[test]
    fn partition_layer_programs_roundtrip() {
        let reqs = vec![
            (
                1,
                Program::Transfer {
                    from: 3,
                    to: 6,
                    amount: u64::MAX - 5,
                },
            ),
            (
                2,
                Program::Adjust {
                    key: 9,
                    delta: 41u64.wrapping_neg(),
                },
            ),
            (
                3,
                Program::Fused {
                    epoch: 7,
                    parts: vec![rmw(4), Program::Adjust { key: 2, delta: 1 }],
                },
            ),
        ];
        let mut wire = Vec::new();
        encode_request(&reqs, &mut wire);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.next_frame().unwrap(), Some(Frame::Request(reqs)));
        assert_eq!(d.bad_frames(), 0);
    }

    #[test]
    fn response_roundtrips() {
        let resps = vec![
            CompletionMsg {
                req_id: 3,
                latency_ns: 1_000,
            },
            CompletionMsg {
                req_id: 9,
                latency_ns: u64::MAX,
            },
        ];
        let mut wire = Vec::new();
        encode_response(&resps, &mut wire);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.next_frame().unwrap(), Some(Frame::Response(resps)));
    }

    #[test]
    fn torn_frame_waits_for_the_rest() {
        let reqs = sample_batch(3);
        let mut wire = Vec::new();
        encode_request(&reqs, &mut wire);
        let mut d = FrameDecoder::new();
        // Deliver byte by byte: never a frame until the last byte lands.
        for (i, &b) in wire.iter().enumerate() {
            d.feed(&[b]);
            let got = d.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert_eq!(
                    got,
                    None,
                    "frame surfaced {} bytes early",
                    wire.len() - i - 1
                );
            } else {
                assert_eq!(got, Some(Frame::Request(reqs.clone())));
            }
        }
    }

    #[test]
    fn bad_crc_is_skipped_without_desyncing() {
        let mut wire = Vec::new();
        encode_request(&sample_batch(2), &mut wire);
        let corrupt_at = wire.len() - 1; // last payload byte
        wire[corrupt_at] ^= 0xFF;
        let good = sample_batch(4);
        encode_request(&good, &mut wire);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        // The corrupt frame vanishes; the next good frame decodes.
        assert_eq!(d.next_frame().unwrap(), Some(Frame::Request(good)));
        assert_eq!(d.bad_frames(), 1);
    }

    #[test]
    fn bad_version_is_skipped_without_desyncing() {
        let mut wire = Vec::new();
        encode_request(&sample_batch(1), &mut wire);
        wire[2] = 99; // version byte
        let good = sample_batch(2);
        encode_request(&good, &mut wire);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.next_frame().unwrap(), Some(Frame::Request(good)));
        assert_eq!(d.bad_frames(), 1);
    }

    #[test]
    fn unknown_kind_is_skipped_without_desyncing() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u32.to_le_bytes());
        let mut wire = Vec::new();
        put_header(77, &payload, &mut wire);
        let good = sample_batch(1);
        encode_request(&good, &mut wire);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.next_frame().unwrap(), Some(Frame::Request(good)));
        assert_eq!(d.bad_frames(), 1);
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut wire = Vec::new();
        encode_request(&sample_batch(1), &mut wire);
        wire[0] = b'X';
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert!(matches!(d.next_frame(), Err(WireError::Desync(_))));
    }

    #[test]
    fn implausible_length_is_fatal() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.push(WIRE_VERSION);
        wire.push(KIND_REQUEST);
        wire.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert!(matches!(d.next_frame(), Err(WireError::Desync(_))));
    }

    #[test]
    fn many_frames_in_one_feed_pop_in_order() {
        let mut wire = Vec::new();
        for n in 1..6u64 {
            encode_request(&sample_batch(n), &mut wire);
        }
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        for n in 1..6u64 {
            assert_eq!(
                d.next_frame().unwrap(),
                Some(Frame::Request(sample_batch(n)))
            );
        }
        assert_eq!(d.next_frame().unwrap(), None);
        assert_eq!(d.pending_bytes(), 0);
    }
}
