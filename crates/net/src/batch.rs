//! Adaptive wire batching: walk the frame-size setpoint along the
//! shared power-of-two ladder.
//!
//! One frame costs one syscall and (server-side) one session push — the
//! wire analogue of the engine's fabric batching. The right batch size
//! depends on load: under light load a small setpoint flushes frames
//! immediately (latency), under heavy load a large one amortizes the
//! fixed per-frame costs over many requests (throughput). Rather than a
//! knob, the setpoint is *steered*, mirroring the group-fsync
//! coordinator's interval controller (PR 7) and the adaptive admission
//! depth (PR 3): both walk `orthrus_core::ladder` with hysteresis so a
//! noisy signal cannot thrash the knob.
//!
//! The signal is flush occupancy. Every flush [`observe`]s how many
//! items it carried: flushes that *overflow* the current setpoint are
//! evidence the producer outpaces it (step up after a short streak —
//! exact fills don't count, or the floor would oscillate); flushes
//! under a quarter of it — or carrying a single item — are evidence of
//! over-waiting (step down after a longer streak: shrinking hurts
//! throughput, so the controller demands more proof). In between,
//! streaks reset and the setpoint holds.
//!
//! [`observe`]: AdaptiveBatcher::observe

use orthrus_core::ladder::{step_down, step_up};

/// Consecutive full flushes before the setpoint doubles.
const UP_PATIENCE: u32 = 2;
/// Consecutive near-empty flushes before the setpoint halves.
const DOWN_PATIENCE: u32 = 8;

/// Hysteresis controller for the per-frame batch setpoint.
#[derive(Debug, Clone)]
pub struct AdaptiveBatcher {
    size: usize,
    min: usize,
    max: usize,
    full_streak: u32,
    sparse_streak: u32,
}

impl AdaptiveBatcher {
    /// Start at `min` (latency-first: batches grow only under evidence).
    pub fn new(min: usize, max: usize) -> Self {
        let min = min.max(1);
        let max = max.max(min);
        AdaptiveBatcher {
            size: min,
            min,
            max,
            full_streak: 0,
            sparse_streak: 0,
        }
    }

    /// The current setpoint: flush when this many items are pending (or
    /// when the connection goes idle, whichever is first).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Record a flush of `n` items and steer the setpoint.
    pub fn observe(&mut self, n: usize) {
        if n > self.size {
            self.sparse_streak = 0;
            self.full_streak += 1;
            if self.full_streak >= UP_PATIENCE {
                self.size = step_up(self.size, self.max);
                self.full_streak = 0;
            }
        } else if n <= 1 || n * 4 <= self.size {
            self.full_streak = 0;
            self.sparse_streak += 1;
            if self.sparse_streak >= DOWN_PATIENCE {
                self.size = step_down(self.size, self.min);
                self.sparse_streak = 0;
            }
        } else {
            self.full_streak = 0;
            self.sparse_streak = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_full_flushes_climb_to_max() {
        let mut b = AdaptiveBatcher::new(1, 64);
        for _ in 0..100 {
            b.observe(b.size() + 1); // overflowing: producer outpaces
        }
        assert_eq!(b.size(), 64, "saturated flushes must reach the ceiling");
    }

    #[test]
    fn sustained_sparse_flushes_fall_back_to_min() {
        let mut b = AdaptiveBatcher::new(1, 64);
        for _ in 0..100 {
            b.observe(b.size() + 1);
        }
        assert_eq!(b.size(), 64);
        for _ in 0..200 {
            b.observe(1); // single-item flushes: over-waiting
        }
        assert_eq!(b.size(), 1, "idle wire must walk back down for latency");
    }

    #[test]
    fn floor_is_stable_under_single_item_flushes() {
        // At the floor, a one-item flush is NOT growth evidence (exact
        // fill ≠ overflow) — otherwise a trickle load would oscillate
        // between 1 and 2 forever.
        let mut b = AdaptiveBatcher::new(1, 64);
        for _ in 0..100 {
            b.observe(1);
        }
        assert_eq!(b.size(), 1);
    }

    #[test]
    fn moderate_occupancy_holds_steady() {
        let mut b = AdaptiveBatcher::new(1, 64);
        for _ in 0..10 {
            b.observe(b.size() + 1);
        }
        let plateau = b.size();
        assert!(plateau > 1);
        // Half-full flushes (between the thresholds) never move the knob.
        for _ in 0..1000 {
            b.observe(plateau / 2);
        }
        assert_eq!(b.size(), plateau);
    }

    #[test]
    fn shrinking_needs_more_proof_than_growing() {
        let mut b = AdaptiveBatcher::new(1, 16);
        b.observe(2);
        b.observe(2);
        assert_eq!(b.size(), 2, "two overflowing flushes at size 1 step up");
        // A couple of sparse flushes at the larger size must NOT step
        // back down — only a sustained streak does.
        b.observe(0);
        b.observe(0);
        assert_eq!(b.size(), 2);
        for _ in 0..DOWN_PATIENCE {
            b.observe(0);
        }
        assert_eq!(b.size(), 1);
    }

    #[test]
    fn bounds_are_respected_and_degenerate_inputs_clamped() {
        let mut b = AdaptiveBatcher::new(0, 0); // clamps to [1, 1]
        for _ in 0..10 {
            b.observe(100);
        }
        assert_eq!(b.size(), 1);
        let mut b = AdaptiveBatcher::new(8, 4); // max < min: clamps to min
        assert_eq!(b.size(), 8);
        for _ in 0..10 {
            b.observe(100);
        }
        assert_eq!(b.size(), 8);
    }
}
