//! # orthrus-net — the TCP front door
//!
//! Everything before this crate drives the engine in-process; real
//! deployments of the paper's design (Ren, Faleiro & Abadi, SIGMOD'16)
//! face clients over a network, and the wire is its own contention
//! point: a naive one-txn-per-syscall front-end bottlenecks long before
//! the lock manager does. This crate adds that missing layer:
//!
//! - [`codec`] — the framed binary protocol: length-prefixed, CRC'd,
//!   versioned frames (the same framing discipline as the command log)
//!   carrying batches of [`Program`](orthrus_txn::Program)s inbound and
//!   completion messages outbound, with a desync-free decoder that
//!   skips damaged-but-framed input and only gives up when the stream
//!   itself is unrecoverable.
//! - [`batch`] — **adaptive wire batching**: the per-connection flush
//!   setpoint walks the shared power-of-two ladder on flush-occupancy
//!   evidence, so batch size tracks offered load instead of being a
//!   hand-tuned constant.
//! - [`server`] — the listener/connection threads: engine ring-full
//!   backpressure is mapped onto TCP flow control (stop reading → the
//!   window closes), and every accepted ticket is conserved per
//!   connection even through abrupt disconnects.
//! - [`client`] — a deliberately boring blocking client for load
//!   generation and tests.
//!
//! Requests are routed by their planned footprint *before* lane
//! selection: the submission path keys on
//! [`Program::routing_key`](orthrus_txn::Program::routing_key) (hot-key
//! hint, else the smallest static-footprint key), so the hint-less
//! partition-layer variants — transfers, adjusts, fused epoch batches —
//! land deterministically whether the engine behind the listener is a
//! single [`orthrus_core::OrthrusEngine`] or one partition of an
//! `orthrus-part` deployment. The codec carries all of those variants
//! verbatim (see `codec::tests::partition_layer_programs_roundtrip`).

pub mod batch;
pub mod client;
pub mod codec;
pub mod server;

pub use batch::AdaptiveBatcher;
pub use client::NetClient;
pub use codec::{CompletionMsg, Frame, FrameDecoder, WireError};
pub use server::{NetConfig, NetServer, FP_NET_READ};
