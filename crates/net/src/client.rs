//! A minimal blocking client for the ORTHRUS wire protocol.
//!
//! This is the counterpart the load generator and the tests drive; it
//! is deliberately simple — blocking socket, small read timeout — so
//! client-side behaviour never confounds server-side measurements. It
//! still speaks the batched protocol: [`send_batch`] encodes any number
//! of programs into **one** request frame and one `write` syscall, the
//! client-side half of adaptive wire batching.
//!
//! [`send_batch`]: NetClient::send_batch

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use orthrus_txn::Program;

use crate::codec::{encode_request, CompletionMsg, Frame, FrameDecoder, WireError};

/// Blocking protocol client over one TCP connection.
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    rdbuf: Vec<u8>,
    wire: Vec<u8>,
    next_req_id: u64,
}

impl NetClient {
    /// Connect with `TCP_NODELAY` and a short read timeout (so
    /// [`poll_responses`](Self::poll_responses) returns instead of
    /// hanging when the server has nothing to say).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(1)))?;
        Ok(NetClient {
            stream,
            decoder: FrameDecoder::new(),
            rdbuf: vec![0u8; 64 * 1024],
            wire: Vec::new(),
            next_req_id: 0,
        })
    }

    /// Request ids are minted densely per connection, so
    /// `next_req_id()` doubles as the sent-request count.
    pub fn next_req_id(&self) -> u64 {
        self.next_req_id
    }

    /// Encode `programs` as one request frame and push it with one
    /// `write_all`. Returns the request ids, in submission order; each
    /// comes back exactly once in a [`CompletionMsg`].
    pub fn send_batch(&mut self, programs: Vec<Program>) -> std::io::Result<Vec<u64>> {
        let reqs: Vec<(u64, Program)> = programs
            .into_iter()
            .map(|p| {
                let id = self.next_req_id;
                self.next_req_id += 1;
                (id, p)
            })
            .collect();
        self.wire.clear();
        encode_request(&reqs, &mut self.wire);
        self.stream.write_all(&self.wire)?;
        Ok(reqs.into_iter().map(|(id, _)| id).collect())
    }

    /// Raw frame escape hatch for protocol tests: write arbitrary bytes
    /// to the server in one call.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Pull whatever responses are available right now into `out`;
    /// returns how many arrived (0 on read timeout). Server-initiated
    /// close surfaces as `UnexpectedEof`.
    pub fn poll_responses(&mut self, out: &mut Vec<CompletionMsg>) -> std::io::Result<usize> {
        let n = self.pop_decoded(out)?;
        if n > 0 {
            return Ok(n);
        }
        match self.stream.read(&mut self.rdbuf) {
            Ok(0) => Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Ok(k) => {
                self.decoder.feed(&self.rdbuf[..k]);
                self.pop_decoded(out)
            }
            // Blocking sockets report a read timeout as either kind,
            // depending on platform.
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Keep polling until `want` responses arrive or `timeout` passes
    /// (then `TimedOut`). The workhorse of closed-loop test clients.
    pub fn recv_exact(
        &mut self,
        want: usize,
        timeout: Duration,
        out: &mut Vec<CompletionMsg>,
    ) -> std::io::Result<()> {
        let deadline = Instant::now() + timeout;
        let mut got = 0usize;
        while got < want {
            got += self.poll_responses(out)?;
            if got < want && Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("got {got} of {want} responses before the deadline"),
                ));
            }
        }
        Ok(())
    }

    fn pop_decoded(&mut self, out: &mut Vec<CompletionMsg>) -> std::io::Result<usize> {
        let mut n = 0usize;
        loop {
            match self.decoder.next_frame() {
                Ok(Some(Frame::Response(msgs))) => {
                    n += msgs.len();
                    out.extend(msgs);
                }
                // Servers don't send requests; skip-and-count already
                // happened inside the decoder for malformed frames.
                Ok(Some(Frame::Request(_))) => {}
                Ok(None) => return Ok(n),
                Err(WireError::Desync(why)) => {
                    return Err(std::io::Error::new(ErrorKind::InvalidData, why))
                }
            }
        }
    }
}
