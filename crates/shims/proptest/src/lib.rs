//! Offline vendored mini property-testing framework.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a small, deterministic re-implementation of the
//! `proptest` API subset its test suites use:
//!
//! - the [`proptest!`] macro (`fn name(arg in strategy, ...) { ... }`,
//!   with an optional `#![proptest_config(...)]` header),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - [`prop_oneof!`], [`strategy::Just`], `any::<T>()`, integer-range
//!   strategies, tuple strategies, `.prop_map`,
//! - `prop::collection::vec`, `prop::collection::btree_map`,
//!   `prop::option::of`.
//!
//! Deliberate simplifications versus the real crate: generation is driven
//! by a fixed-seed SplitMix64 stream (fully deterministic run to run, no
//! `PROPTEST_*` environment handling), and failing cases are reported
//! with their inputs but **not shrunk**. That trade keeps the shim a few
//! hundred lines while preserving the regression-catching power the test
//! suites rely on.

pub mod test_runner {
    use std::fmt;

    /// Configuration for a generated property test.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property-test case (what `prop_assert!` returns).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// Alias used by real-proptest idioms (`TestCaseError::Fail(..)`
        /// is an enum there; here `reject` behaves like `fail`).
        pub fn reject(message: impl Into<String>) -> Self {
            Self::fail(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic SplitMix64 stream feeding the strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` (decorrelated across cases).
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: 0x9e37_79b9_7f4a_7c15u64 ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d),
            }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform bool.
        pub fn next_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe: `Box<dyn Strategy<Value = V>>` works (and is what
    /// [`prop_oneof!`](crate::prop_oneof) builds).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Retry-generate until `pred` accepts the value (bounded; panics
        /// if the predicate rejects 1000 draws in a row).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Box the strategy (type erasure for heterogeneous collections).
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive draws",
                self.whence
            )
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct OneOf<V> {
        alts: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// Build from at least one alternative.
        pub fn new(alts: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { alts }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.alts.len() as u64) as usize;
            self.alts[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_bool()
        }
    }

    /// Strategy over the whole domain of `T` (returned by [`any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// `Vec` strategy: length uniform in `size`, elements from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `BTreeMap` strategy: up to `size` draws, deduplicated by key.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Build a [`BTreeMapStrategy`].
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let draws = self.size.start + rng.below(span) as usize;
            let mut map = BTreeMap::new();
            for _ in 0..draws {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Some` ~80% of the time (built by [`of`]).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` strategy over `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop::` namespace as re-exported by the real crate's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` test file expects.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {{
        let alts: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($alt)),+];
        $crate::strategy::OneOf::new(alts)
    }};
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in prop::collection::vec(any::<u32>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let mut __inputs = ::std::string::String::new();
                $(
                    ::std::fmt::Write::write_fmt(
                        &mut __inputs,
                        format_args!("  {} = {:?}\n", stringify!($arg), &$arg),
                    )
                    .expect("formatting proptest inputs");
                )+
                let __run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(__e) = __run() {
                    ::std::panic!(
                        "proptest '{}' failed at case {}/{}:\n{}\ninputs (no shrinking):\n{}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        __e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5, z in -4i32..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((-4..4).contains(&z));
        }

        #[test]
        fn vec_respects_size_and_maps(
            v in prop::collection::vec(any::<u64>().prop_map(|n| n % 10), 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&n| n < 10));
        }

        #[test]
        fn oneof_and_tuples_mix(
            pair in (0u64..4, any::<bool>()),
            pick in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!((1..5).contains(&pick));
        }

        #[test]
        fn btree_map_and_option(
            m in prop::collection::btree_map(0u64..50, 0u32..9, 0..20),
            o in prop::option::of(1u8..3),
        ) {
            prop_assert!(m.len() <= 20);
            for (&k, &v) in &m {
                prop_assert!(k < 50 && v < 9);
            }
            if let Some(x) = o {
                prop_assert!(x == 1 || x == 2);
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        let s = crate::collection::vec(0u64..1000, 5..6);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u64..4) {
                prop_assert!(false, "x was {}", x);
            }
        }
        always_fails();
    }
}
