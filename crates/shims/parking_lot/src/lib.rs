//! Offline vendored subset of `parking_lot`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the parking_lot API it uses: a
//! non-poisoning [`Mutex`] (and [`RwLock`] for good measure), implemented
//! over `std::sync` with poison errors swallowed. Call-site compatible:
//! `lock()` returns the guard directly, not a `Result`.

use std::fmt;

/// A mutual exclusion primitive. Unlike `std::sync::Mutex`, `lock()`
/// returns the guard directly; a panic in another thread while holding
/// the lock does not poison it.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock with the same non-poisoning contract as [`Mutex`].
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A poisoned std mutex would panic here; ours recovers.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
