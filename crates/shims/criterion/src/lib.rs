//! Offline vendored micro-benchmark harness.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, dependency-free stand-in for the
//! `criterion` API subset its benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, measurement_time, warm_up_time,
//! throughput, bench_function, finish}`, `Bencher::{iter, iter_batched}`,
//! `Throughput`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: per benchmark, a calibration pass during the warmup
//! window sizes an inner batch (~100µs of work between clock reads), then
//! `sample_size` samples are collected over the measurement window and
//! the mean/min ns-per-iteration plus derived throughput are printed.
//! No statistics beyond that — this harness exists so `cargo bench`
//! produces honest relative numbers offline, not confidence intervals.

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// How throughput is derived from iteration counts.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Input-passing discipline for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// One setup per timed routine call.
    PerIteration,
    /// Accepted for API compatibility; treated as `PerIteration`.
    SmallInput,
    /// Accepted for API compatibility; treated as `PerIteration`.
    LargeInput,
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Ungrouped single benchmark (API compatibility).
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warmup (and batch calibration) window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Work units per iteration, for derived throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(sample) => self.report(id, sample),
            None => println!("  {}/{id}: no measurement (b.iter never called)", self.name),
        }
        self
    }

    /// End the group (printing is incremental; nothing left to flush).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, s: Sample) {
        let mean_ns = s.total.as_nanos() as f64 / s.iters.max(1) as f64;
        let mut line = format!(
            "  {}/{id}: {} iters, mean {}",
            self.name,
            s.iters,
            fmt_ns(mean_ns)
        );
        if let Some(t) = self.throughput {
            let per_sec = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => {
                    n as f64 * s.iters as f64 / s.total.as_secs_f64()
                }
            };
            let unit = match t {
                Throughput::Elements(_) => "elem/s",
                Throughput::Bytes(_) => "B/s",
            };
            line.push_str(&format!(", thrpt {} {unit}", fmt_count(per_sec)));
        }
        println!("{line}");
    }
}

struct Sample {
    iters: u64,
    total: Duration,
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    result: Option<Sample>,
}

impl Bencher {
    /// Measure `f` over many iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup + calibration: size an inner batch to ~100µs so the
        // clock reads don't dominate sub-microsecond routines.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            hint_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((100_000.0 / per_iter.max(0.5)) as u64).clamp(1, 1 << 20);

        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let per_sample = self.measurement_time / self.sample_size as u32;
        for _ in 0..self.sample_size {
            let sample_start = Instant::now();
            while sample_start.elapsed() < per_sample {
                let t0 = Instant::now();
                for _ in 0..batch {
                    hint_black_box(f());
                }
                total += t0.elapsed();
                iters += batch;
            }
        }
        self.result = Some(Sample { iters, total });
    }

    /// Measure `routine` with a fresh un-timed `setup` product per call.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            hint_black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while total < self.measurement_time {
            let input = setup();
            let t0 = Instant::now();
            hint_black_box(routine(input));
            total += t0.elapsed();
            iters += 1;
        }
        self.result = Some(Sample { iters, total });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else {
        format!("{:.3} ms/iter", ns / 1_000_000.0)
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-selftest");
        g.sample_size(2);
        g.measurement_time(Duration::from_millis(20));
        g.warm_up_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(1));
        let mut ran = false;
        g.bench_function("spin", |b| {
            ran = true;
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x
            });
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-selftest-batched");
        g.sample_size(2);
        g.measurement_time(Duration::from_millis(10));
        g.warm_up_time(Duration::from_millis(2));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&b| b as u64).sum::<u64>(),
                BatchSize::PerIteration,
            );
        });
        g.finish();
    }
}
