//! Offline vendored subset of `crossbeam`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the (tiny) slice of the crossbeam API it actually
//! uses: [`utils::CachePadded`] and [`thread::scope`]. Both are
//! API-compatible with the real crate for the call sites in this repo; if
//! a future PR needs more surface, extend this shim or swap it for the
//! real dependency once a registry is reachable.

pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line, preventing
    /// false sharing between adjacent values.
    ///
    /// 128-byte alignment matches crossbeam's choice on x86_64 and
    /// aarch64 (two 64-byte lines, covering adjacent-line prefetchers).
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pads and aligns a value to the length of a cache line.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Returns the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        #[inline]
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        #[inline]
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("CachePadded")
                .field("value", &self.value)
                .finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(t: T) -> Self {
            CachePadded::new(t)
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's `scope(|s| ...)` shape, implemented
    //! over `std::thread::scope`.
    //!
    //! Differences from crossbeam kept deliberately small: the closure
    //! passed to [`Scope::spawn`] receives a unit placeholder instead of a
    //! nested `&Scope` (no call site in this workspace spawns from inside
    //! a spawned thread).

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle to a scope's spawn facility.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument exists only for
        /// crossbeam signature compatibility (`|_| ...` at call sites).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Creates a new scope for spawning threads; returns `Err` with the
    /// panic payload if the scope closure (or an unjoined child) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use super::utils::CachePadded;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn cache_padded_is_aligned_and_derefs() {
        let x = CachePadded::new(7u64);
        assert_eq!(*x, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(x.into_inner(), 7);
    }

    #[test]
    fn scope_joins_workers() {
        let counter = AtomicUsize::new(0);
        let result = thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let counter = &counter;
                handles.push(s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    1usize
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(result, 4);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scope_propagates_panics_as_err() {
        let result = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(result.is_err());
    }
}
