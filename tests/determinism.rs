//! Determinism and reproducibility guarantees the harness relies on:
//! identical seeds must produce identical workload streams and plans, so
//! paired system comparisons see the same transaction population.

use orthrus::common::XorShift64;
use orthrus::storage::tpcc::{TpccConfig, TpccDb};
use orthrus::storage::Table;
use orthrus::txn::{plan_accesses, Database, Program};
use orthrus::workload::{MicroSpec, PartitionConstraint, Spec, TpccSpec};

#[test]
fn micro_streams_are_reproducible_and_thread_decorrelated() {
    let spec = Spec::Micro(
        MicroSpec::hot_cold(10_000, 64, 2, 10, false)
            .with_constraint(PartitionConstraint::Exact { count: 2, of: 8 }),
    );
    for thread in 0..4 {
        let a: Vec<Program> = {
            let mut g = spec.generator(7, thread);
            (0..50).map(|_| g.next_program()).collect()
        };
        let b: Vec<Program> = {
            let mut g = spec.generator(7, thread);
            (0..50).map(|_| g.next_program()).collect()
        };
        assert_eq!(a, b, "thread {thread} stream not reproducible");
    }
    let mut g0 = spec.generator(7, 0);
    let mut g1 = spec.generator(7, 1);
    let s0: Vec<Program> = (0..10).map(|_| g0.next_program()).collect();
    let s1: Vec<Program> = (0..10).map(|_| g1.next_program()).collect();
    assert_ne!(s0, s1, "threads must not replay each other's stream");
}

#[test]
fn tpcc_streams_are_reproducible() {
    let spec = Spec::Tpcc(TpccSpec::paper_mix(TpccConfig::tiny(4)));
    let a: Vec<Program> = {
        let mut g = spec.generator(3, 2);
        (0..100).map(|_| g.next_program()).collect()
    };
    let b: Vec<Program> = {
        let mut g = spec.generator(3, 2);
        (0..100).map(|_| g.next_program()).collect()
    };
    assert_eq!(a, b);
}

#[test]
fn plans_are_deterministic_given_program_and_db() {
    let db = Database::Tpcc(TpccDb::load(TpccConfig::tiny(2), 17));
    let spec = Spec::Tpcc(TpccSpec::paper_mix(TpccConfig::tiny(2)));
    let mut g = spec.generator(17, 0);
    for _ in 0..200 {
        let program = g.next_program();
        let mut r1 = XorShift64::new(1);
        let mut r2 = XorShift64::new(1);
        let p1 = plan_accesses(&program, &db, 0, &mut r1);
        let p2 = plan_accesses(&program, &db, 0, &mut r2);
        assert_eq!(p1, p2);
        // Plans are sorted and deduplicated.
        let keys: Vec<u64> = p1.accesses.entries().iter().map(|e| e.0).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "plan must be sorted and deduped");
    }
}

#[test]
fn different_seeds_change_the_stream() {
    let spec = Spec::Micro(MicroSpec::uniform(100_000, 10, false));
    let a: Vec<Program> = {
        let mut g = spec.generator(1, 0);
        (0..10).map(|_| g.next_program()).collect()
    };
    let b: Vec<Program> = {
        let mut g = spec.generator(2, 0);
        (0..10).map(|_| g.next_program()).collect()
    };
    assert_ne!(a, b);
}

#[test]
fn tpcc_loads_are_identical_across_engine_instances() {
    // The harness loads one TpccDb per engine run; identical seeds must
    // give byte-identical contention structure (same last-name index).
    let a = TpccDb::load(TpccConfig::tiny(2), 123);
    let b = TpccDb::load(TpccConfig::tiny(2), 123);
    for w in 0..2 {
        for d in 0..2 {
            for name in 0..30 {
                assert_eq!(
                    a.customers_by_last_name(w, d, name),
                    b.customers_by_last_name(w, d, name)
                );
            }
        }
    }
}

#[test]
fn flat_table_lookup_is_total_on_loaded_range() {
    let t = Table::new(1000, 64);
    for k in 0..1000u64 {
        assert!(t.lookup(k).is_some());
    }
    assert!(t.lookup(1000).is_none());
}
