//! Property-based integration tests: the serializability witness must hold
//! for *arbitrary* workload shapes and engine configurations, not just the
//! paper's points.

mod common;

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use orthrus::baselines::DeadlockFreeEngine;
use orthrus::common::RunParams;
use orthrus::core::{CcAssignment, OrthrusConfig, OrthrusEngine};
use orthrus::storage::Table;
use orthrus::txn::Database;
use orthrus::workload::{MicroSpec, Spec};

fn short_params(threads: usize, seed: u64) -> RunParams {
    RunParams {
        threads,
        seed,
        warmup: Duration::from_millis(10),
        measure: Duration::from_millis(60),
        ollp_noise_pct: 0,
    }
}

proptest! {
    // Each case spins up real threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn orthrus_witness_holds_for_arbitrary_shapes(
        n_records in 64usize..1024,
        ops in 1usize..8,
        hot in prop::option::of(4u64..32),
        n_cc in 1usize..4,
        n_exec in 1usize..4,
        inflight in 1usize..16,
        seed in any::<u64>(),
    ) {
        let _serial = common::serial();
        let hot = hot.filter(|&h| h <= n_records as u64 && h >= 2);
        let spec = match hot {
            Some(h) => MicroSpec::hot_cold(n_records as u64, h, ops.min(2), ops, false),
            None => MicroSpec::uniform(n_records as u64, ops, false),
        };
        let db = Arc::new(Database::Flat(Table::new(n_records, 64)));
        let mut cfg = OrthrusConfig::with_threads(n_cc, n_exec, CcAssignment::KeyModulo);
        cfg.max_inflight = inflight;
        let stats = OrthrusEngine::new(Arc::clone(&db), Spec::Micro(spec), cfg)
            .run(&short_params(n_cc + n_exec, seed));
        prop_assert!(stats.totals.committed_all > 0);
        let total: u64 = (0..n_records as u64)
            .map(|k| unsafe { db.read_counter(k) })
            .sum();
        prop_assert_eq!(total, stats.totals.committed_all * ops as u64);
    }

    #[test]
    fn deadlock_free_witness_holds_for_arbitrary_shapes(
        n_records in 64usize..1024,
        ops in 1usize..8,
        threads in 1usize..5,
        seed in any::<u64>(),
    ) {
        let _serial = common::serial();
        let spec = MicroSpec::uniform(n_records as u64, ops, false);
        let db = Arc::new(Database::Flat(Table::new(n_records, 64)));
        let stats = DeadlockFreeEngine::new(Arc::clone(&db), 128, Spec::Micro(spec))
            .run(&short_params(threads, seed));
        prop_assert!(stats.totals.committed_all > 0);
        let total: u64 = (0..n_records as u64)
            .map(|k| unsafe { db.read_counter(k) })
            .sum();
        prop_assert_eq!(total, stats.totals.committed_all * ops as u64);
    }
}
