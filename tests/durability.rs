//! The crash-point test harness (end to end, through the umbrella crate).
//!
//! A service-mode engine runs with command logging; the test then plays
//! crash scenarios against the resulting log with [`FailpointLog`] —
//! truncating mid-record at scripted byte offsets — and recovers. The
//! contract under test, for every admission policy:
//!
//! - **torn tail dropped**: a record cut mid-bytes contributes nothing;
//! - **no loss**: every fully-logged commit is replayed;
//! - **no double-apply**: each replayed ticket appears exactly once, and
//!   the recovered table state equals the scripted commits applied once
//!   each (verified against an independent model, not against replay
//!   itself);
//! - **prefix consistency**: the recovered state is the state of a log
//!   prefix — torn-tail commits vanish atomically, whole records at a
//!   time.

mod common;

use std::collections::HashMap;
use std::sync::Arc;

use orthrus::common::failpoint::global as failpoints;
use orthrus::common::{FailAction, TempDir};
use orthrus::core::{
    AdmissionPolicy, CcAssignment, DurabilityMode, EngineError, OrthrusConfig, OrthrusEngine,
};
use orthrus::durability::log::{FP_APPEND, FP_FSYNC};
use orthrus::durability::FailpointLog;
use orthrus::storage::Table;
use orthrus::txn::{Database, Program};
use orthrus::workload::{MicroSpec, Spec, TpccSpec};

const KEYS: u64 = 64;

/// Drive `n` deterministic submissions through a fresh logging engine,
/// shut down, and return (log scratch dir, ticket → program map).
fn run_logged(
    admission: AdmissionPolicy,
    mode: DurabilityMode,
    n: u64,
) -> (TempDir, HashMap<u64, Program>) {
    let scratch = TempDir::new("crash-suite");
    let db = Arc::new(Database::Flat(Table::new(KEYS as usize, 64)));
    let mut cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo)
        .with_durability(mode, scratch.path());
    cfg.admission = admission;
    let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
    let mut handle = engine.start(17);
    let session = handle.session();
    // Hot-key-skewed programs so conflict batching fuses multi-commit
    // records (group commit must be crash-tested, not just singletons).
    let mut gen = Spec::Micro(MicroSpec::hot_cold(KEYS, 8, 2, 3, false)).generator(41, 0);
    let mut by_ticket = HashMap::new();
    for _ in 0..n {
        let program = gen.next_program();
        let ticket = session.submit(program.clone()).expect("accepting");
        by_ticket.insert(ticket.0, program);
    }
    let stats = handle.shutdown();
    assert_eq!(stats.totals.committed_all, n, "shutdown drains dry");
    let mut done = Vec::new();
    handle.drain_completions(&mut done);
    assert_eq!(done.len() as u64, n, "every ticket completed");
    (scratch, by_ticket)
}

/// Recover the (possibly mutilated) log into a fresh database and check
/// the conservation contract against the submission ledger. Returns how
/// many transactions were replayed.
fn recover_and_audit(dir: &std::path::Path, by_ticket: &HashMap<u64, Program>) -> u64 {
    let fresh = Arc::new(Database::Flat(Table::new(KEYS as usize, 64)));
    let cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo)
        .with_durability(DurabilityMode::Log, dir);
    let (_engine, report) = OrthrusEngine::recover(Arc::clone(&fresh), cfg);

    // No double-apply: tickets are distinct…
    let mut tickets = report.tickets.clone();
    tickets.sort_unstable();
    let before = tickets.len();
    tickets.dedup();
    assert_eq!(tickets.len(), before, "a ticket replayed twice");
    // …and no invention: every replayed ticket was really submitted.
    let mut model = vec![0u64; KEYS as usize];
    for t in &tickets {
        let program = by_ticket.get(t).expect("replayed a ticket never issued");
        let Program::Rmw { keys } = program else {
            panic!("micro workload submits RMWs only");
        };
        for &k in keys {
            model[k as usize] += 1;
        }
    }
    // Exactly-once effects: recovered state equals the surviving commits
    // applied once each (independent model, not replay-vs-replay).
    for k in 0..KEYS {
        // SAFETY: quiesced test database.
        let got = unsafe { fresh.read_counter(k) };
        assert_eq!(got, model[k as usize], "key {k} diverged");
    }
    assert_eq!(report.txns as usize, tickets.len());
    report.txns
}

/// The scripted crash-point sweep: clean log first (no loss at all),
/// then ≥3 truncation offsets — a mid-record tear near the end, an exact
/// record boundary, and a deep cut — scripted in descending order
/// against one log (truncation is monotone), under all three admission
/// policies.
#[test]
fn crash_points_conserve_tickets_under_every_policy() {
    let _serial = common::serial();
    for admission in [
        AdmissionPolicy::Fifo,
        AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 8,
        },
        AdmissionPolicy::Adaptive {
            classes: 4,
            max_batch: 8,
            threshold_pct: 5,
            hysteresis: 1,
            epoch: 32,
        },
    ] {
        let n = 250u64;
        let (scratch, by_ticket) = run_logged(admission.clone(), DurabilityMode::Log, n);
        let fp = FailpointLog::new(scratch.path());

        // Untruncated: the clean log loses nothing.
        let replayed = recover_and_audit(fp.dir(), &by_ticket);
        assert_eq!(replayed, n, "{admission}: clean log must replay all");

        let ends = fp.record_boundaries().unwrap();
        assert!(ends.len() >= 6, "{admission}: too few records to script");
        // Offset 1: tear the final record 3 bytes short of its end.
        fp.truncate_at(ends[ends.len() - 1] - 3).unwrap();
        let r1 = recover_and_audit(fp.dir(), &by_ticket);
        assert!(r1 < n, "{admission}: torn tail must drop its commits");

        // Offset 2: an exact record boundary ~2/3 in (clean crash).
        let k2 = (ends.len() * 2 / 3).min(ends.len() - 2);
        fp.truncate_at(ends[k2]).unwrap();
        let r2 = recover_and_audit(fp.dir(), &by_ticket);
        assert!(r2 <= r1, "{admission}: deeper cut keeps fewer commits");

        // Offset 3: a deep tear, 1 byte into a record ~1/3 in.
        let k3 = ends.len() / 3;
        fp.truncate_at(ends[k3] - 1).unwrap();
        let r3 = recover_and_audit(fp.dir(), &by_ticket);
        assert!(
            0 < r3 && r3 < r2,
            "{admission}: deep tear keeps a nonempty strict prefix"
        );

        // Offset 4 (bonus): cut inside the segment header — recovery of
        // an (effectively) empty log is a clean zero state.
        fp.truncate_at(3).unwrap();
        let r4 = recover_and_audit(fp.dir(), &by_ticket);
        assert_eq!(r4, 0, "{admission}: headerless log replays nothing");
    }
}

/// `log+fsync`: the same crash contract holds when every record is
/// fsynced — and a crash at any scripted offset still recovers the
/// longest prefix (fsync narrows the loss *window*; the recovery
/// algebra is identical).
#[test]
fn crash_points_hold_under_fsync_mode() {
    let _serial = common::serial();
    let n = 120u64;
    let (scratch, by_ticket) = run_logged(
        AdmissionPolicy::ConflictBatch {
            classes: 4,
            batch: 8,
        },
        DurabilityMode::LogFsync,
        n,
    );
    let fp = FailpointLog::new(scratch.path());
    assert_eq!(recover_and_audit(fp.dir(), &by_ticket), n);
    let ends = fp.record_boundaries().unwrap();
    fp.truncate_at(ends[ends.len() / 2] - 2).unwrap();
    let kept = recover_and_audit(fp.dir(), &by_ticket);
    assert!(0 < kept && kept < n);
}

/// Crash consistency on TPC-C: a torn log replays to a *valid* prefix
/// state — the money-conservation invariants hold on the recovered
/// database even though the tail commits vanished.
#[test]
fn tpcc_crash_recovery_preserves_invariants() {
    let _serial = common::serial();
    let scratch = TempDir::new("crash-tpcc");
    let tpcc_cfg = orthrus::storage::tpcc::TpccConfig::tiny(2);
    let db = Arc::new(Database::Tpcc(orthrus::storage::tpcc::TpccDb::load(
        tpcc_cfg, 33,
    )));
    let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse)
        .with_durability(DurabilityMode::Log, scratch.path());
    let engine = OrthrusEngine::service(Arc::clone(&db), cfg.clone());
    let mut handle = engine.start(9);
    let session = handle.session();
    let mut gen = Spec::Tpcc(TpccSpec::paper_mix(tpcc_cfg)).generator(7, 0);
    let n = 300u64;
    for _ in 0..n {
        session.submit(gen.next_program()).expect("accepting");
    }
    handle.shutdown();
    drop(handle);
    drop(engine);

    let fp = FailpointLog::new(scratch.path());
    let ends = fp.record_boundaries().unwrap();
    fp.truncate_at(ends[ends.len() / 2] - 1).unwrap();

    let fresh = Arc::new(Database::Tpcc(orthrus::storage::tpcc::TpccDb::load(
        tpcc_cfg, 33,
    )));
    let (_engine, report) = OrthrusEngine::recover(Arc::clone(&fresh), cfg);
    assert!(0 < report.txns && report.txns < n);
    let t = fresh.tpcc();
    // Money conservation on the prefix state (same invariant the live
    // engine tests pin): warehouse ytd deltas == district ytd deltas,
    // history rows == payments.
    let w_delta: u64 = (0..t.warehouses.len())
        // SAFETY: quiesced test database.
        .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
        .sum();
    let d_delta: u64 = (0..t.districts.len())
        // SAFETY: quiesced test database.
        .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
        .sum();
    assert_eq!(w_delta, d_delta, "torn tail broke money conservation");
    let hist: u64 = (0..t.districts.len())
        // SAFETY: quiesced test database.
        .map(|d| unsafe { t.districts.read_with(d, |r| r.history_ctr as u64) })
        .sum();
    let pay: u64 = (0..t.customers.len())
        // SAFETY: quiesced test database.
        .map(|c| unsafe { t.customers.read_with(c, |r| (r.payment_cnt - 1) as u64) })
        .sum();
    assert_eq!(hist, pay);
}

/// Clears the shared failpoint registry on drop, so a failing assertion
/// in one scripted test cannot leave faults armed for the next.
struct ArmedRegistry;

impl ArmedRegistry {
    fn arm(name: &str, action: FailAction, count: Option<u64>) -> Self {
        failpoints().clear();
        failpoints().configure(name, action, count);
        ArmedRegistry
    }
}

impl Drop for ArmedRegistry {
    fn drop(&mut self) {
        failpoints().clear();
    }
}

/// An injected final-sync failure degrades gracefully: `try_shutdown`
/// returns a typed [`EngineError::LogSync`], every worker is joined (the
/// handle is reusable enough to report `Failed` on a retry), and the
/// already-appended log still recovers in full.
#[test]
fn injected_fsync_failure_reports_typed_error() {
    let _serial = common::serial();
    let n = 40u64;
    let scratch = TempDir::new("fsync-fault");
    let db = Arc::new(Database::Flat(Table::new(KEYS as usize, 64)));
    let cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo)
        .with_durability(DurabilityMode::Log, scratch.path());
    let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
    let mut handle = engine.start(17);
    let session = handle.session();
    let mut gen = Spec::Micro(MicroSpec::hot_cold(KEYS, 8, 2, 3, false)).generator(41, 0);
    let mut by_ticket = HashMap::new();
    for _ in 0..n {
        let program = gen.next_program();
        let ticket = session.submit(program.clone()).expect("accepting");
        by_ticket.insert(ticket.0, program);
    }
    // Arm *after* the work is submitted: in fsync-free `Log` mode the
    // workers never sync; only the shutdown's final sync hits the fault.
    let _armed = ArmedRegistry::arm(FP_FSYNC, FailAction::Err, None);
    match handle.try_shutdown() {
        Err(EngineError::LogSync(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::Other, "injected error kind")
        }
        other => panic!("expected LogSync, got {other:?}"),
    }
    assert!(failpoints().hits(FP_FSYNC) > 0, "the fault never fired");
    // The handle is spent and says so — no panic, no hang, no leak.
    match handle.try_shutdown() {
        Err(EngineError::Failed(_)) => {}
        other => panic!("expected Failed on retried shutdown, got {other:?}"),
    }
    drop(handle);
    drop(_armed);
    // Workers were joined before the failing sync, so every record was
    // appended: the log replays the complete run.
    assert_eq!(recover_and_audit(scratch.path(), &by_ticket), n);
}

/// An injected append failure kills the execution thread; shutdown
/// reports it as a typed [`EngineError::WorkerPanicked`] — joining every
/// worker, not hanging on the dead one — and recovery still replays the
/// record-complete prefix.
#[test]
fn injected_append_failure_degrades_to_worker_panic() {
    let _serial = common::serial();
    let scratch = TempDir::new("append-fault");
    let db = Arc::new(Database::Flat(Table::new(KEYS as usize, 64)));
    let cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo)
        .with_durability(DurabilityMode::Log, scratch.path());
    let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
    let mut handle = engine.start(17);
    let session = handle.session();
    let mut gen = Spec::Micro(MicroSpec::hot_cold(KEYS, 8, 2, 3, false)).generator(41, 0);
    let _armed = ArmedRegistry::arm(FP_APPEND, FailAction::Err, Some(1));
    // Few enough submissions to fit the ingest ring: the client must not
    // block feeding an execution thread the fault is about to kill.
    for _ in 0..20 {
        session.submit(gen.next_program()).expect("accepting");
    }
    match handle.try_shutdown() {
        Err(EngineError::WorkerPanicked(msg)) => {
            assert!(
                msg.contains("append"),
                "panic should name the append failure: {msg:?}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

/// A torn append scripted mid-stream through the registry — the write
/// lands only a 7-byte prefix of the frame, something the offline
/// truncation harness cannot do against a *live* engine: recovery drops
/// the torn record atomically and replays every fully-written commit.
#[test]
fn injected_torn_append_recovers_written_prefix() {
    let _serial = common::serial();
    let n1 = 30u64;
    let scratch = TempDir::new("torn-fault");
    let db = Arc::new(Database::Flat(Table::new(KEYS as usize, 64)));
    let cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo)
        .with_durability(DurabilityMode::Log, scratch.path());
    let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
    let mut handle = engine.start(17);
    let session = handle.session();
    let mut gen = Spec::Micro(MicroSpec::hot_cold(KEYS, 8, 2, 3, false)).generator(41, 0);
    let mut by_ticket = HashMap::new();
    let mut done = Vec::new();
    for _ in 0..n1 {
        let program = gen.next_program();
        let ticket = session.submit(program.clone()).expect("accepting");
        by_ticket.insert(ticket.0, program);
    }
    // Completions release only after the covering record is written:
    // once all n1 are back, n1 commits are durably framed in the log.
    while (done.len() as u64) < n1 {
        handle.drain_completions(&mut done);
        std::thread::yield_now();
    }
    let _armed = ArmedRegistry::arm(FP_APPEND, FailAction::Torn(7), Some(1));
    for _ in 0..10 {
        let program = gen.next_program();
        let ticket = session.submit(program.clone()).expect("accepting");
        by_ticket.insert(ticket.0, program);
    }
    match handle.try_shutdown() {
        Err(EngineError::WorkerPanicked(_)) => {}
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    drop(handle);
    drop(engine);
    drop(_armed);
    // The torn frame is dropped; everything whole before it survives.
    let replayed = recover_and_audit(scratch.path(), &by_ticket);
    assert!(
        replayed >= n1 && replayed < n1 + 10,
        "replayed {replayed}, expected the pre-tear prefix (≥ {n1}, < {})",
        n1 + 10
    );
}

/// An unreadable log is a typed [`EngineError::Recovery`], not a panic:
/// here the "directory" is a plain file.
#[test]
fn unreadable_log_is_a_typed_recovery_error() {
    let _serial = common::serial();
    let scratch = TempDir::new("recover-fault");
    let bogus = scratch.path().join("not-a-dir");
    std::fs::write(&bogus, b"junk").unwrap();
    let db = Arc::new(Database::Flat(Table::new(KEYS as usize, 64)));
    let cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo)
        .with_durability(DurabilityMode::Log, &bogus);
    match OrthrusEngine::try_recover(db, cfg) {
        Err(EngineError::Recovery(_)) => {}
        Ok(_) => panic!("recovering from a plain file must fail"),
        Err(other) => panic!("expected Recovery, got {other:?}"),
    }
}

/// `drain_completions` stays safe after the engine is shut down: the
/// workers are joined, but the handle still owns the completion rings
/// and the internal stash, so the call returns every remaining
/// completion and then empties — it must never panic on joined threads.
#[test]
fn drain_completions_after_shutdown_returns_leftovers_then_empty() {
    let _serial = common::serial();
    let n = 25u64;
    let db = Arc::new(Database::Flat(Table::new(KEYS as usize, 64)));
    let cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo);
    let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
    let mut handle = engine.start(17);
    let session = handle.session();
    let mut gen = Spec::Micro(MicroSpec::hot_cold(KEYS, 8, 2, 3, false)).generator(41, 0);
    for _ in 0..n {
        session.submit(gen.next_program()).expect("accepting");
    }
    // No drains before shutdown: everything lands in the shutdown stash.
    handle.shutdown();
    let mut done = Vec::new();
    assert_eq!(handle.drain_completions(&mut done) as u64, n);
    assert_eq!(
        done.len() as u64,
        n,
        "post-shutdown drain conserves tickets"
    );
    // Drained dry: further calls are cheap no-ops, not errors.
    for _ in 0..3 {
        assert_eq!(handle.drain_completions(&mut done), 0);
    }
}

/// Same audit on the *failed*-shutdown path: after a worker panic the
/// handle reports `EngineError::Failed` on retries, and draining must
/// still be a non-panicking no-op (whatever completed before the fault
/// is collectable; nothing hangs).
#[test]
fn drain_completions_after_failed_shutdown_does_not_panic() {
    let _serial = common::serial();
    let scratch = TempDir::new("drain-after-fail");
    let db = Arc::new(Database::Flat(Table::new(KEYS as usize, 64)));
    let cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo)
        .with_durability(DurabilityMode::Log, scratch.path());
    let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
    let mut handle = engine.start(17);
    let session = handle.session();
    let mut gen = Spec::Micro(MicroSpec::hot_cold(KEYS, 8, 2, 3, false)).generator(41, 0);
    let _armed = ArmedRegistry::arm(FP_APPEND, FailAction::Err, Some(1));
    for _ in 0..10 {
        session.submit(gen.next_program()).expect("accepting");
    }
    match handle.try_shutdown() {
        Err(EngineError::WorkerPanicked(_)) => {}
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    let mut done = Vec::new();
    handle.drain_completions(&mut done); // must not panic
    match handle.try_shutdown() {
        Err(EngineError::Failed(_)) => {}
        other => panic!("expected Failed on retried shutdown, got {other:?}"),
    }
    handle.drain_completions(&mut done); // still safe after Failed
}
