//! Full TPC-C five-transaction mix across engines (extension beyond the
//! paper's NewOrder+Payment subset).
//!
//! The read-side and delivery transactions make the OLLP machinery work
//! for a living: Delivery's order/customer set, StockLevel's item set, and
//! the by-name lookups are all data-dependent, estimated from the
//! reconnaissance board, and validated under locks.
//!
//! Conservation laws checked on planned engines (which never leave partial
//! effects):
//!
//! 1. **Payment**: Σ warehouse ytd deltas == Σ district ytd deltas, and
//!    history rows == customer payment counts.
//! 2. **Delivery (wrap-proof)**: every Payment moves `amount` from
//!    `balance` to `ytd_payment` (their sum is invariant), and every
//!    Delivery adds the credited amount to `balance` *and* to the home
//!    district's `delivered_cents`. Hence
//!    Σ(balance + ytd_payment − initial) == Σ district `delivered_cents`,
//!    no matter how many order slots were recycled.
//! 3. **Delivery counts**: Σ customer `delivery_cnt` == Σ district
//!    `delivered_cnt`.
//! 4. **Order-state coherence** within each district's surviving slot
//!    window: a stamped carrier implies a cleared NewOrder marker and
//!    fully-flagged lines; orders at/after the delivery cursor are
//!    unstamped.

mod common;

use std::sync::Arc;
use std::time::Duration;

use orthrus::baselines::{DeadlockFreeEngine, TwoPlEngine};
use orthrus::common::RunParams;
use orthrus::core::{CcAssignment, OrthrusConfig, OrthrusEngine};
use orthrus::lockmgr::{Dreadlocks, WaitDie};
use orthrus::storage::tpcc::{TpccConfig, TpccDb, TpccLayout};
use orthrus::txn::Database;
use orthrus::workload::{Spec, TpccSpec};

fn params() -> RunParams {
    RunParams {
        threads: 4,
        seed: 321,
        warmup: Duration::from_millis(30),
        measure: Duration::from_millis(150),
        ollp_noise_pct: 0,
    }
}

fn cfg_t() -> TpccConfig {
    TpccConfig::tiny(2).with_initial_orders(20)
}

fn spec() -> Spec {
    Spec::Tpcc(TpccSpec::full_mix(cfg_t()))
}

fn db() -> Arc<Database> {
    Arc::new(Database::Tpcc(TpccDb::load(cfg_t(), 77)))
}

/// The exact conservation laws (planned engines only).
fn check_conservation(db: &Database) {
    let t = db.tpcc();
    let cfg = *t.cfg();

    // 1. Payment totals agree between the two ledger levels.
    let w_ytd: u64 = (0..t.warehouses.len())
        .map(|i| unsafe { t.warehouses.read_with(i, |r| r.ytd_cents) } - 30_000_000)
        .sum();
    let d_ytd: u64 = (0..t.districts.len())
        .map(|i| unsafe { t.districts.read_with(i, |r| r.ytd_cents) } - 3_000_000)
        .sum();
    assert_eq!(w_ytd, d_ytd, "warehouse vs district payment totals");

    // History rows vs customer payment counters.
    let hist: u64 = (0..t.districts.len())
        .map(|i| unsafe { t.districts.read_with(i, |r| r.history_ctr as u64) })
        .sum();
    let pays: u64 = (0..t.customers.len())
        .map(|i| unsafe { t.customers.read_with(i, |r| (r.payment_cnt - 1) as u64) })
        .sum();
    assert_eq!(hist, pays, "history rows vs customer payments");

    // 2 & 3. Delivery conservation, immune to slot recycling.
    let cust_sum: i128 = (0..t.customers.len())
        .map(|i| unsafe {
            t.customers
                .read_with(i, |r| r.balance_cents as i128 + r.ytd_payment_cents as i128)
        })
        .sum();
    // Loader initials: balance −1000, ytd_payment 1000 → per-customer sum 0.
    let initial: i128 = 0;
    let delivered: i128 = (0..t.districts.len())
        .map(|i| unsafe { t.districts.read_with(i, |r| r.delivered_cents as i128) })
        .sum();
    assert_eq!(
        cust_sum - initial,
        delivered,
        "delivery credit conservation"
    );

    let cust_deliveries: u64 = (0..t.customers.len())
        .map(|i| unsafe { t.customers.read_with(i, |r| r.delivery_cnt as u64) })
        .sum();
    let district_deliveries: u64 = (0..t.districts.len())
        .map(|i| unsafe { t.districts.read_with(i, |r| r.delivered_cnt as u64) })
        .sum();
    assert_eq!(cust_deliveries, district_deliveries, "delivery counts");

    // 4. Order-state coherence within each surviving window.
    for w in 0..cfg.warehouses {
        for d in 0..cfg.districts_per_wh {
            let dn = t.layout.district_no(w, d) as usize;
            let (next_o, next_deliv) = unsafe {
                t.districts
                    .read_with(dn, |r| (r.next_o_id, r.next_deliv_o_id))
            };
            assert!(next_deliv <= next_o, "cursor may not pass allocation");
            let window_lo = next_o.saturating_sub(cfg.order_slots_per_district);
            for o in window_lo..next_o {
                let o_slot = TpccLayout::slot(t.layout.order_key(w, d, o));
                let (slot_o, carrier, ol_cnt) = unsafe {
                    t.orders
                        .read_with(o_slot, |r| (r.o_id, r.carrier_id, r.ol_cnt))
                };
                if slot_o != o {
                    continue; // recycled before this order was ever written
                }
                let marker = unsafe {
                    t.new_orders
                        .read_with(TpccLayout::slot(t.layout.new_order_key(w, d, o)), |m| {
                            m.valid
                        })
                };
                if carrier != 0 {
                    assert!(!marker, "delivered order {o} retains its marker");
                    for line in 0..ol_cnt.min(cfg.max_lines) {
                        let ls = TpccLayout::slot(t.layout.order_line_key(w, d, o, line));
                        assert!(
                            unsafe { t.order_lines.read_with(ls, |l| l.delivered) },
                            "delivered order {o} has unflagged line {line}"
                        );
                    }
                } else if o >= next_deliv {
                    assert!(marker, "undelivered order {o} lost its marker");
                }
            }
        }
    }
}

#[test]
fn orthrus_full_mix_conserves() {
    let _serial = common::serial();
    let db = db();
    let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
    let stats = OrthrusEngine::new(Arc::clone(&db), spec(), cfg.clone()).run(&params());
    assert!(stats.totals.committed > 0);
    check_conservation(&db);
}

#[test]
fn deadlock_free_full_mix_conserves() {
    let _serial = common::serial();
    let db = db();
    let stats = DeadlockFreeEngine::new(Arc::clone(&db), 1024, spec()).run(&params());
    assert!(stats.totals.committed > 0);
    check_conservation(&db);
}

#[test]
fn orthrus_full_mix_with_ollp_noise_recovers() {
    let _serial = common::serial();
    let db = db();
    let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
    let mut engine_cfg = cfg;
    engine_cfg.ollp_noise_pct = 30;
    let stats = OrthrusEngine::new(Arc::clone(&db), spec(), engine_cfg).run(&params());
    assert!(stats.totals.committed > 0);
    assert!(
        stats.totals.aborts_ollp > 0,
        "noise must exercise the OLLP retry path"
    );
    check_conservation(&db);
}

#[test]
fn dynamic_2pl_full_mix_makes_progress_under_both_policies() {
    let _serial = common::serial();
    // The full mix introduces a genuine lock-order inversion (OrderStatus
    // takes customer→district; Payment takes district→customer), so the
    // dynamic engines' deadlock handling earns its keep here. Dynamic 2PL
    // has no undo log: only the one-sided invariants hold.
    for policy in ["wait-die", "dreadlocks"] {
        let db = db();
        let stats = match policy {
            "wait-die" => TwoPlEngine::new(Arc::clone(&db), WaitDie, 1024, spec()).run(&params()),
            _ => TwoPlEngine::new(Arc::clone(&db), Dreadlocks::new(4), 1024, spec()).run(&params()),
        };
        assert!(stats.totals.committed > 0, "{policy} made no progress");
        let t = db.tpcc();
        let w_ytd: u64 = (0..t.warehouses.len())
            .map(|i| unsafe { t.warehouses.read_with(i, |r| r.ytd_cents) })
            .sum();
        assert!(w_ytd >= 2 * 30_000_000, "{policy}: payments must apply");
        for i in 0..t.districts.len() {
            let (next_o, next_deliv) = unsafe {
                t.districts
                    .read_with(i, |r| (r.next_o_id, r.next_deliv_o_id))
            };
            assert!(next_deliv <= next_o, "{policy}: cursor past allocation");
        }
    }
}

#[test]
fn full_mix_read_transactions_leave_no_trace() {
    let _serial = common::serial();
    // A mix of only OrderStatus + StockLevel must not change any row the
    // conservation laws look at.
    let mut s = TpccSpec::full_mix(cfg_t());
    s.new_order_pct = 0;
    s.delivery_pct = 0;
    s.order_status_pct = 50;
    s.stock_level_pct = 50;
    let db = db();
    let before: i128 = {
        let t = db.tpcc();
        (0..t.customers.len())
            .map(|i| unsafe { t.customers.read_with(i, |r| r.balance_cents as i128) })
            .sum()
    };
    let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
    let stats = OrthrusEngine::new(Arc::clone(&db), Spec::Tpcc(s), cfg.clone()).run(&params());
    assert!(stats.totals.committed > 0);
    let t = db.tpcc();
    let after: i128 = (0..t.customers.len())
        .map(|i| unsafe { t.customers.read_with(i, |r| r.balance_cents as i128) })
        .sum();
    assert_eq!(before, after);
    for i in 0..t.districts.len() {
        let (next_o, delivered) =
            unsafe { t.districts.read_with(i, |r| (r.next_o_id, r.delivered_cnt)) };
        assert_eq!(next_o, 20, "readers must not allocate orders");
        assert_eq!(delivered, 0, "readers must not deliver");
    }
}
