//! End-to-end TPC-C semantics: after a concurrent run on a planned engine
//! (exact effects), the database must satisfy the spec-level relationships
//! between tables — the strongest cross-crate consistency check we have.

mod common;

use std::sync::Arc;
use std::time::Duration;

use orthrus::common::RunParams;
use orthrus::core::{CcAssignment, OrthrusConfig, OrthrusEngine};
use orthrus::storage::tpcc::{TpccConfig, TpccDb, TpccLayout};
use orthrus::txn::Database;
use orthrus::workload::{Spec, TpccSpec};

fn run_orthrus_tpcc(warehouses: u32, seed: u64) -> (Arc<Database>, u64) {
    let cfg_t = TpccConfig::tiny(warehouses);
    let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, seed)));
    let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));
    let cfg = OrthrusConfig::with_threads(2, 3, CcAssignment::Warehouse);
    let stats = OrthrusEngine::new(Arc::clone(&db), spec, cfg.clone()).run(&RunParams {
        threads: 5,
        seed,
        warmup: Duration::from_millis(30),
        measure: Duration::from_millis(200),
        ollp_noise_pct: 0,
    });
    (db, stats.totals.committed_all)
}

#[test]
fn order_headers_match_district_sequences() {
    let _serial = common::serial();
    let (db, commits) = run_orthrus_tpcc(2, 31);
    assert!(commits > 0);
    let t = db.tpcc();
    let cfg = *t.cfg();
    for w in 0..cfg.warehouses {
        for d in 0..cfg.districts_per_wh {
            let dn = t.layout.district_no(w, d) as usize;
            let next = unsafe { t.districts.read_with(dn, |r| r.next_o_id) };
            // Every allocated o_id below the slot ring's size must have a
            // matching header and NewOrder marker in its slot.
            for o in 0..next.min(cfg.order_slots_per_district) {
                let expect_o = if next <= cfg.order_slots_per_district {
                    o
                } else {
                    continue; // wrapped: slot holds a newer order
                };
                let slot = TpccLayout::slot(t.layout.order_key(w, d, expect_o));
                let (got_o, ol_cnt) = unsafe { t.orders.read_with(slot, |r| (r.o_id, r.ol_cnt)) };
                assert_eq!(got_o, expect_o, "order header o_id mismatch");
                assert!((5..=15).contains(&(ol_cnt as usize)), "ol_cnt {ol_cnt}");
                let no_slot = TpccLayout::slot(t.layout.new_order_key(w, d, expect_o));
                assert!(unsafe { t.new_orders.read_with(no_slot, |r| r.valid) });
                // Order lines for this order are populated and plausible.
                for line in 0..ol_cnt {
                    let ol_key = t.layout.order_line_key(w, d, expect_o, line);
                    let (i_id, qty) = unsafe {
                        t.order_lines
                            .read_with(TpccLayout::slot(ol_key), |r| (r.i_id, r.qty))
                    };
                    assert!(i_id < cfg.items);
                    assert!((1..=10).contains(&qty));
                }
            }
        }
    }
}

#[test]
fn stock_updates_equal_order_lines_written() {
    let _serial = common::serial();
    let (db, commits) = run_orthrus_tpcc(1, 77);
    assert!(commits > 0);
    let t = db.tpcc();
    let cfg = *t.cfg();
    // Sum of per-stock order counts == sum of ol_cnt over all order
    // headers (single warehouse, no remote lines, no wraparound worry:
    // compare against district sequence totals which count every order
    // ever created).
    let stock_orders: u64 = (0..cfg.n_stock() as usize)
        .map(|s| unsafe { t.stock.read_with(s, |r| r.order_cnt as u64) })
        .sum();
    // Count lines through stock ytd as well: ytd increments by qty ≥ 1
    // per line, so ytd ≥ lines.
    let stock_ytd: u64 = (0..cfg.n_stock() as usize)
        .map(|s| unsafe { t.stock.read_with(s, |r| r.ytd as u64) })
        .sum();
    assert!(stock_orders > 0, "no NewOrder committed?");
    assert!(stock_ytd >= stock_orders);
    // Remote counts must be zero with a single warehouse.
    let remote: u64 = (0..cfg.n_stock() as usize)
        .map(|s| unsafe { t.stock.read_with(s, |r| r.remote_cnt as u64) })
        .sum();
    assert_eq!(remote, 0);
}

#[test]
fn customer_balances_reconcile_with_payment_volume() {
    let _serial = common::serial();
    let (db, commits) = run_orthrus_tpcc(2, 13);
    assert!(commits > 0);
    let t = db.tpcc();
    // Sum of (initial_balance - balance) over customers == total payment
    // volume == sum of district ytd deltas.
    let balance_delta: i64 = (0..t.customers.len())
        .map(|c| unsafe { t.customers.read_with(c, |r| -1000 - r.balance_cents) })
        .sum();
    let d_delta: u64 = (0..t.districts.len())
        .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
        .sum();
    assert_eq!(balance_delta, d_delta as i64);
}

#[test]
fn ollp_noise_does_not_break_semantics() {
    let _serial = common::serial();
    let cfg_t = TpccConfig::tiny(2);
    let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 55)));
    let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));
    let mut cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
    cfg.ollp_noise_pct = 40;
    let stats = OrthrusEngine::new(Arc::clone(&db), spec, cfg.clone()).run(&RunParams {
        threads: 4,
        seed: 55,
        warmup: Duration::from_millis(20),
        measure: Duration::from_millis(150),
        ollp_noise_pct: 40,
    });
    assert!(stats.totals.committed > 0);
    assert!(stats.totals.aborts_ollp > 0, "noise must trigger retries");
    let t = db.tpcc();
    let w_delta: u64 = (0..t.warehouses.len())
        .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
        .sum();
    let d_delta: u64 = (0..t.districts.len())
        .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
        .sum();
    assert_eq!(w_delta, d_delta, "OLLP retries must not double-apply");
}
