//! Shared helpers for the integration-test binaries.

#![allow(dead_code)]

use std::sync::{Mutex, MutexGuard};

/// Serializes timed engine runs within one test binary: concurrent
/// multi-thread engine windows starve each other on small CI hosts.
pub fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
