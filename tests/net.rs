//! End-to-end tests for the TCP front door (`orthrus-net`): loopback
//! round trips, per-connection ticket conservation, ring-full → TCP
//! flow-control backpressure, abrupt disconnects, and torn reads.

mod common;

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use orthrus::common::failpoint::{global as failpoints, FailAction};
use orthrus::core::{CcAssignment, EngineHandle, OrthrusConfig, OrthrusEngine};
use orthrus::net::{codec, FrameDecoder, NetClient, NetConfig, NetServer, FP_NET_READ};
use orthrus::storage::Table;
use orthrus::txn::{Database, Program};

fn engine(ingest_capacity: usize) -> EngineHandle {
    let db = Arc::new(Database::Flat(Table::new(1024, 64)));
    let mut cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo);
    cfg.ingest_capacity = ingest_capacity;
    OrthrusEngine::service(db, cfg).start(7)
}

fn rmw(key: u64) -> Program {
    Program::Rmw { keys: vec![key] }
}

const DEADLINE: Duration = Duration::from_secs(20);

/// Clears the shared failpoint registry on drop, so a failing assertion
/// in one test cannot leave faults armed for the next (the registry is
/// process-global and these tests share a binary).
struct ArmedRegistry;

impl ArmedRegistry {
    fn arm(name: &str, action: FailAction, count: Option<u64>) -> Self {
        failpoints().clear();
        failpoints().configure(name, action, count);
        ArmedRegistry
    }
}

impl Drop for ArmedRegistry {
    fn drop(&mut self) {
        failpoints().clear();
    }
}

/// Several clients, each with its own request-id space: every request
/// must come back on its own connection exactly once, and the server's
/// conservation ledger must balance to zero loss.
#[test]
fn loopback_roundtrip_conserves_every_ticket_per_connection() {
    let _guard = common::serial();
    let server = NetServer::start(engine(256), NetConfig::default()).expect("bind loopback");
    let addr = server.addr();

    const CLIENTS: usize = 4;
    const BATCHES: usize = 5;
    const PER_BATCH: usize = 40;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let mut expected = HashSet::new();
                let mut got = Vec::new();
                for b in 0..BATCHES {
                    let programs = (0..PER_BATCH)
                        .map(|i| rmw((c * 7 + b * 3 + i) as u64))
                        .collect();
                    for id in client.send_batch(programs).expect("send") {
                        expected.insert(id);
                    }
                }
                client
                    .recv_exact(BATCHES * PER_BATCH, DEADLINE, &mut got)
                    .expect("all responses before deadline");
                let ids: HashSet<u64> = got.iter().map(|m| m.req_id).collect();
                assert_eq!(ids.len(), got.len(), "no request answered twice");
                assert_eq!(ids, expected, "exactly this connection's requests");
                assert!(got.iter().all(|m| m.latency_ns > 0));
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let total = (CLIENTS * BATCHES * PER_BATCH) as u64;
    let (mut handle, stats) = server.shutdown();
    assert_eq!(stats.net_rx_txns, total, "every request decoded");
    assert_eq!(stats.net_tx_completions, total, "every completion sent");
    assert!(
        stats.net_read_calls <= stats.net_rx_txns,
        "batching must not inflate read syscalls past one per txn"
    );
    handle.shutdown();
}

/// Tiny ingest rings + a flood: the server must park rejected work and
/// stop reading (closing the TCP window) rather than drop or die — and
/// still answer everything.
#[test]
fn ring_full_backpressure_slows_the_wire_without_loss() {
    let _guard = common::serial();
    let cfg = NetConfig {
        backpressure_cap: 32,
        client_ring: 16,
        ..NetConfig::default()
    };
    let server = NetServer::start(engine(8), cfg).expect("bind loopback");
    let mut client = NetClient::connect(server.addr()).expect("connect");

    const TOTAL: usize = 3000;
    let mut got = Vec::new();
    for b in 0..TOTAL / 100 {
        let programs = (0..100).map(|i| rmw((b * 100 + i) as u64 % 64)).collect();
        client.send_batch(programs).expect("send");
        // Keep draining while pushing so the client-side socket never
        // wedges both directions at once.
        let _ = client.poll_responses(&mut got);
    }
    client
        .recv_exact(TOTAL - got.len(), DEADLINE, &mut got)
        .expect("flood fully answered");
    let ids: HashSet<u64> = got.iter().map(|m| m.req_id).collect();
    assert_eq!(ids.len(), TOTAL, "every flooded request answered once");

    let (mut handle, stats) = server.shutdown();
    assert_eq!(stats.net_tx_completions, TOTAL as u64);
    assert!(
        stats.net_tx_frames < TOTAL as u64 / 2,
        "a backpressured flood must flush in batches, not one-by-one \
         ({} frames for {TOTAL} completions)",
        stats.net_tx_frames
    );
    handle.shutdown();
}

/// Drop the socket with submissions in flight: their completions are
/// counted as orphaned — never lost, never a panic — and the server
/// keeps serving other connections.
#[test]
fn abrupt_disconnect_orphans_inflight_tickets() {
    let _guard = common::serial();
    let server = NetServer::start(engine(256), NetConfig::default()).expect("bind loopback");

    const N: usize = 200;
    {
        let mut client = NetClient::connect(server.addr()).expect("connect");
        let programs = (0..N).map(|i| rmw(i as u64)).collect();
        client.send_batch(programs).expect("send");
        // Dropped here: the OS sends FIN/RST with completions in flight.
    }

    // Every accepted ticket must eventually be accounted: either routed
    // (made it to the connection before the drop was noticed) or
    // orphaned (arrived after unregister). Nothing may vanish.
    let deadline = Instant::now() + DEADLINE;
    loop {
        let accounted = server.hub().routed() + server.hub().orphaned();
        if accounted >= N as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {accounted}/{N} completions accounted after disconnect"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The front door must still be open for business.
    let mut client = NetClient::connect(server.addr()).expect("reconnect");
    client.send_batch(vec![rmw(1)]).expect("send");
    let mut got = Vec::new();
    client
        .recv_exact(1, DEADLINE, &mut got)
        .expect("served after disconnect");

    let (mut handle, _) = server.shutdown();
    handle.shutdown();
}

/// A torn read (injected via the `net.read` failpoint) desyncs the
/// stream. The connection must close — no panic, no garbage responses —
/// while fresh connections still work and conservation holds.
#[test]
fn torn_read_failpoint_closes_the_connection_cleanly() {
    let _guard = common::serial();
    let server = NetServer::start(engine(256), NetConfig::default()).expect("bind loopback");

    // Tear exactly one read: the first 5 bytes survive (a valid header
    // prefix), the rest of that read vanishes mid-frame.
    let _armed = ArmedRegistry::arm(FP_NET_READ, FailAction::Torn(5), Some(1));
    {
        let mut client = NetClient::connect(server.addr()).expect("connect");
        client
            .send_batch((0..50).map(|i| rmw(i as u64)).collect())
            .expect("send");
        // A tear alone just looks like a half-arrived frame; the desync
        // shows when the *next* bytes land misaligned. Wait for the torn
        // read to actually consume the batch (the hit counter ticks on
        // the server's read), then send 0xff filler: it completes the
        // orphaned header with an implausible length — the fatal path.
        let deadline = Instant::now() + DEADLINE;
        while failpoints().hits(FP_NET_READ) == 0 {
            assert!(Instant::now() < deadline, "server never read the batch");
            std::thread::sleep(Duration::from_millis(1));
        }
        client.send_raw(&[0xffu8; 2048]).expect("send garbage tail");
        // The stream desyncs at the server; it must close on us rather
        // than answer with garbage.
        let mut got = Vec::new();
        let deadline = Instant::now() + DEADLINE;
        // Poll until the server closes on us — the expected outcome.
        while client.poll_responses(&mut got).is_ok() {
            // Any responses that do arrive must be real req ids.
            assert!(got.iter().all(|m| m.req_id < 50));
            assert!(
                Instant::now() < deadline,
                "server never closed a desynced stream"
            );
        }
    }

    // Server survives; a clean connection is served normally.
    let mut client = NetClient::connect(server.addr()).expect("reconnect");
    client.send_batch(vec![rmw(3), rmw(4)]).expect("send");
    let mut got = Vec::new();
    client
        .recv_exact(2, DEADLINE, &mut got)
        .expect("served after torn read");

    let (mut handle, _) = server.shutdown();
    handle.shutdown();
}

/// A CRC-corrupted frame is skipped (counted, not fatal) and the frames
/// after it in the same write still execute: intact framing means a
/// damaged payload never desyncs the stream.
#[test]
fn corrupt_crc_frame_is_skipped_without_desync() {
    let _guard = common::serial();
    let server = NetServer::start(engine(256), NetConfig::default()).expect("bind loopback");
    let mut client = NetClient::connect(server.addr()).expect("connect");

    // Frame 1: valid encoding of req id 0, then flip a payload byte so
    // the CRC check fails. Frame 2: untouched, req id 1.
    let mut bad = Vec::new();
    codec::encode_request(&[(0, rmw(9))], &mut bad);
    let last = bad.len() - 1;
    bad[last] ^= 0xff;
    let mut good = Vec::new();
    codec::encode_request(&[(1, rmw(10))], &mut good);
    bad.extend_from_slice(&good);
    client.send_raw(&bad).expect("send");

    let mut got = Vec::new();
    client
        .recv_exact(1, DEADLINE, &mut got)
        .expect("good frame survives");
    assert_eq!(got[0].req_id, 1, "the corrupted frame must not execute");

    let (mut handle, stats) = server.shutdown();
    assert_eq!(stats.net_bad_frames, 1, "the skip must be counted");
    assert_eq!(stats.net_rx_txns, 1);
    handle.shutdown();
}

/// The decoder itself never panics on arbitrary bytes — fuzz the whole
/// input space, not just mutations of valid frames.
#[test]
fn decoder_survives_arbitrary_garbage() {
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for _ in 0..200 {
        let mut d = FrameDecoder::new();
        let len = (rng() % 512) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng() as u8).collect();
        d.feed(&bytes);
        // Drain until quiescent; errors are fine, panics are not.
        while let Ok(Some(_)) = d.next_frame() {}
    }
}
