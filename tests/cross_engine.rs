//! Cross-engine integration tests: every system in the paper runs the
//! same workloads against the same invariants.
//!
//! For increment-only RMW workloads, "sum of all counters == total applied
//! increments" is a full serializability witness (any lost update breaks
//! it; any torn write breaks per-record counts). Planned engines never
//! leave partial effects, so they satisfy the exact form; dynamic 2PL may
//! retry after applying a prefix (no undo log, as in the paper's
//! prototype), so it satisfies the one-sided form.

mod common;

use std::sync::Arc;
use std::time::Duration;

use orthrus::baselines::{DeadlockFreeEngine, PartitionedStoreEngine, TwoPlEngine};
use orthrus::common::RunParams;
use orthrus::core::{CcAssignment, OrthrusConfig, OrthrusEngine};
use orthrus::lockmgr::{Dreadlocks, WaitDie, WaitForGraph};
use orthrus::storage::{PartitionedTable, Table};
use orthrus::txn::Database;
use orthrus::workload::{MicroSpec, PartitionConstraint, Spec, TpccSpec};

const N: usize = 512;
const OPS: usize = 6;

fn params() -> RunParams {
    RunParams {
        threads: 4,
        seed: 99,
        warmup: Duration::from_millis(30),
        measure: Duration::from_millis(150),
        ollp_noise_pct: 0,
    }
}

fn contended_spec() -> Spec {
    Spec::Micro(MicroSpec::hot_cold(N as u64, 8, 2, OPS, false))
}

fn counter_total(db: &Database) -> u64 {
    (0..N as u64).map(|k| unsafe { db.read_counter(k) }).sum()
}

#[test]
fn orthrus_exact_serializability_witness() {
    let _serial = common::serial();
    let db = Arc::new(Database::Flat(Table::new(N, 64)));
    let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
    let stats = OrthrusEngine::new(Arc::clone(&db), contended_spec(), cfg.clone()).run(&params());
    assert!(stats.totals.committed > 0);
    assert_eq!(counter_total(&db), stats.totals.committed_all * OPS as u64);
}

#[test]
fn deadlock_free_exact_serializability_witness() {
    let _serial = common::serial();
    let db = Arc::new(Database::Flat(Table::new(N, 64)));
    let stats = DeadlockFreeEngine::new(Arc::clone(&db), 256, contended_spec()).run(&params());
    assert!(stats.totals.committed > 0);
    assert_eq!(counter_total(&db), stats.totals.committed_all * OPS as u64);
}

#[test]
fn partitioned_store_exact_serializability_witness() {
    let _serial = common::serial();
    let db = Arc::new(Database::Partitioned(PartitionedTable::new(N, 64, 4)));
    let spec = Spec::Micro(
        MicroSpec::uniform(N as u64, OPS, false)
            .with_constraint(PartitionConstraint::MultiFraction { pct: 50, of: 4 }),
    );
    let stats = PartitionedStoreEngine::new(Arc::clone(&db), spec).run(&params());
    assert!(stats.totals.committed > 0);
    assert_eq!(counter_total(&db), stats.totals.committed_all * OPS as u64);
}

#[test]
fn dynamic_2pl_one_sided_witness_all_policies() {
    let _serial = common::serial();
    // Wait-die.
    let db = Arc::new(Database::Flat(Table::new(N, 64)));
    let stats = TwoPlEngine::new(Arc::clone(&db), WaitDie, 256, contended_spec()).run(&params());
    assert!(counter_total(&db) >= stats.totals.committed_all * OPS as u64);

    // Wait-for graph.
    let db = Arc::new(Database::Flat(Table::new(N, 64)));
    let stats = TwoPlEngine::new(Arc::clone(&db), WaitForGraph::new(4), 256, contended_spec())
        .run(&params());
    assert!(counter_total(&db) >= stats.totals.committed_all * OPS as u64);

    // Dreadlocks.
    let db = Arc::new(Database::Flat(Table::new(N, 64)));
    let stats =
        TwoPlEngine::new(Arc::clone(&db), Dreadlocks::new(4), 256, contended_spec()).run(&params());
    assert!(counter_total(&db) >= stats.totals.committed_all * OPS as u64);
}

#[test]
fn read_only_writes_nothing_on_any_engine() {
    let _serial = common::serial();
    let spec = Spec::Micro(MicroSpec::hot_cold(N as u64, 8, 2, OPS, true));

    let db = Arc::new(Database::Flat(Table::new(N, 64)));
    let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);
    OrthrusEngine::new(Arc::clone(&db), spec.clone(), cfg.clone()).run(&params());
    assert_eq!(counter_total(&db), 0);

    let db = Arc::new(Database::Flat(Table::new(N, 64)));
    TwoPlEngine::new(Arc::clone(&db), WaitDie, 256, spec.clone()).run(&params());
    assert_eq!(counter_total(&db), 0);

    let db = Arc::new(Database::Flat(Table::new(N, 64)));
    DeadlockFreeEngine::new(Arc::clone(&db), 256, spec).run(&params());
    assert_eq!(counter_total(&db), 0);
}

#[test]
fn tpcc_conservation_matches_between_planned_engines() {
    let _serial = common::serial();
    use orthrus::storage::tpcc::{TpccConfig, TpccDb};
    let cfg_t = TpccConfig::tiny(2);
    let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));

    let conservation = |db: &Database| {
        let t = db.tpcc();
        let w: u64 = (0..t.warehouses.len())
            .map(|i| unsafe { t.warehouses.read_with(i, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        let d: u64 = (0..t.districts.len())
            .map(|i| unsafe { t.districts.read_with(i, |r| r.ytd_cents) } - 3_000_000)
            .sum();
        assert_eq!(w, d, "payment totals must agree");
        // Order headers == sum of district o_id counters.
        let orders: u64 = (0..t.districts.len())
            .map(|i| unsafe { t.districts.read_with(i, |r| r.next_o_id as u64) })
            .sum();
        orders
    };

    let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 5)));
    let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::Warehouse);
    let stats = OrthrusEngine::new(Arc::clone(&db), spec.clone(), cfg.clone()).run(&params());
    let orders = conservation(&db);
    assert!(orders > 0);
    assert!(stats.totals.committed > 0);

    let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, 5)));
    let stats = DeadlockFreeEngine::new(Arc::clone(&db), 1024, spec).run(&params());
    let orders = conservation(&db);
    assert!(orders > 0);
    assert!(stats.totals.committed > 0);
}

#[test]
fn split_variants_agree_with_unsplit_on_effects() {
    let _serial = common::serial();
    // Same workload on ORTHRUS vs SPLIT ORTHRUS: different physical
    // layout, same logical outcome (exact witness both times).
    let spec = || {
        Spec::Micro(
            MicroSpec::uniform(N as u64, OPS, false)
                .with_constraint(PartitionConstraint::Exact { count: 2, of: 2 }),
        )
    };
    let cfg = OrthrusConfig::with_threads(2, 2, CcAssignment::KeyModulo);

    let flat = Arc::new(Database::Flat(Table::new(N, 64)));
    let s1 = OrthrusEngine::new(Arc::clone(&flat), spec(), cfg.clone()).run(&params());
    assert_eq!(counter_total(&flat), s1.totals.committed_all * OPS as u64);

    let split = Arc::new(Database::Partitioned(PartitionedTable::new(N, 64, 2)));
    let s2 = OrthrusEngine::new(Arc::clone(&split), spec(), cfg.clone()).run(&params());
    assert_eq!(counter_total(&split), s2.totals.committed_all * OPS as u64);
}
