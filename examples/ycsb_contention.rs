//! YCSB shoot-out: ORTHRUS vs deadlock-free locking vs dynamic 2PL on the
//! paper's high-contention 10-RMW mix (2 records from a 64-record hot
//! set + 8 cold), the workload behind Figure 12(b).
//!
//! Run: `cargo run --release --example ycsb_contention [threads]`

use orthrus::harness::{systems, BenchConfig, SystemKind};
use orthrus::workload::MicroSpec;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let mut bc = BenchConfig::from_env();
    bc.n_records = 100_000;

    println!("YCSB 10-RMW, 2 hot of 64 + 8 cold, {threads} threads\n");
    println!(
        "{:<22}{:>14}{:>12}{:>10}",
        "system", "txns/sec", "aborts", "abort%"
    );

    let systems_under_test = [
        SystemKind::Orthrus,
        SystemKind::DeadlockFree,
        SystemKind::TwoPlWaitDie,
        SystemKind::TwoPlDreadlocks,
        SystemKind::TwoPlWfg,
    ];
    let mut results = Vec::new();
    for kind in systems_under_test {
        let spec = MicroSpec::hot_cold(bc.n_records as u64, 64, 2, 10, false);
        let stats = systems::run_micro(kind, spec, threads, &bc);
        println!(
            "{:<22}{:>14.0}{:>12}{:>9.1}%",
            kind.label(),
            stats.throughput(),
            stats.totals.aborts(),
            100.0 * stats.abort_rate(),
        );
        results.push((kind, stats.throughput()));
    }

    let orthrus = results
        .iter()
        .find(|(k, _)| *k == SystemKind::Orthrus)
        .unwrap()
        .1;
    println!("\nORTHRUS speedups over the dynamic-2PL baselines:");
    for (kind, tput) in &results {
        if matches!(
            kind,
            SystemKind::TwoPlWaitDie | SystemKind::TwoPlDreadlocks | SystemKind::TwoPlWfg
        ) {
            println!(
                "  vs {:<20} {:>5.2}x",
                kind.label(),
                orthrus / tput.max(1.0)
            );
        }
    }
}
