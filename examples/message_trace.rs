//! A message-level walkthrough of Figures 2 and 3 of the paper.
//!
//! Transaction T1 needs locks on records A, B, and C, owned by CC threads
//! CC1, CC2, CC3. This example drives the actual `CcState` lock machines
//! single-threadedly and prints every message, reproducing the paper's
//! protocol diagrams:
//!
//! - **Figure 2** (no chain shown): the execution thread enqueues T1 at
//!   CC1, which inserts the lock request into its local table.
//! - **Figure 3** (the forwarding optimization): CC1 grants its span and
//!   forwards T1 to CC2; CC2 to CC3; CC3 answers the execution thread.
//!   `Ncc + 1 = 4` messages instead of `2·Ncc = 6`.
//!
//! Run: `cargo run --example message_trace`

use std::sync::Arc;

use orthrus::common::LockMode;
use orthrus::core::cc::{CcState, OutMsg};
use orthrus::core::msg::{CcRequest, ExecResponse, Token};
use orthrus::core::LockPlan;
use orthrus::txn::AccessSet;

/// Records A, B, C: one per CC thread (key % 3 picks the owner).
const A: u64 = 0; // CC0  (the paper's CC1)
const B: u64 = 1; // CC1  (the paper's CC2)
const C: u64 = 2; // CC2  (the paper's CC3)

fn label(key: u64) -> &'static str {
    match key {
        A => "A",
        B => "B",
        C => "C",
        _ => "?",
    }
}

fn main() {
    // Three CC threads, one execution thread E1, one transaction T1.
    let mut ccs = [
        CcState::new(0, 16),
        CcState::new(1, 16),
        CcState::new(2, 16),
    ];
    let t1 = Token {
        exec: 0,
        slot: 0,
        gen: 0,
    };

    // E1 analyzes T1's accesses and groups them into per-CC spans sorted
    // by CC id — the global order that makes deadlock impossible (§3.2).
    let set = AccessSet::from_unsorted(vec![
        (A, LockMode::Exclusive),
        (B, LockMode::Exclusive),
        (C, LockMode::Exclusive),
    ]);
    let plan = Arc::new(LockPlan::build(&set, |k| (k % 3) as u32));
    println!("T1 requires locks on A, B, C — spans:");
    for (i, span) in plan.spans().iter().enumerate() {
        let keys: Vec<&str> = plan
            .span_entries(i)
            .iter()
            .map(|&(k, _)| label(k))
            .collect();
        println!("  span {i}: CC{} ← {{{}}}", span.cc, keys.join(", "));
    }

    // Step 1 (Figure 3): E1 enqueues T1's acquire at the FIRST CC thread
    // only; the chain does the rest.
    println!("\nStep 1: E1 → CC0  Acquire(T1, span 0)");
    let mut inbox: Option<(u32, CcRequest)> = Some((
        0,
        CcRequest::Acquire {
            token: t1,
            plan: Arc::clone(&plan),
            span_idx: 0,
            forward: true,
            waiters: 0,
        },
    ));

    let mut messages = 1; // the message E1 just sent
    let mut step = 2;
    let mut out = Vec::new();
    while let Some((cc_id, req)) = inbox.take() {
        out.clear();
        ccs[cc_id as usize].handle(req, &mut out);
        for msg in out.drain(..) {
            messages += 1;
            match msg {
                OutMsg::ToCc { cc, req } => {
                    let CcRequest::Acquire { span_idx, .. } = &req else {
                        unreachable!("the chain forwards acquires only");
                    };
                    println!(
                        "Step {step}: CC{cc_id} grants its span, forwards → CC{cc} (span {span_idx})"
                    );
                    inbox = Some((cc, req));
                }
                OutMsg::ToExec { exec, resp } => {
                    let ExecResponse::Granted { span_idx, .. } = resp;
                    println!(
                        "Step {step}: CC{cc_id} grants span {span_idx}, answers → E{exec}: all locks held"
                    );
                }
            }
            step += 1;
        }
    }
    println!(
        "\nTotal messages: {messages} = Ncc + 1 = {} + 1  (unoptimized: 2·Ncc = {})",
        plan.spans().len(),
        2 * plan.spans().len()
    );
    for (i, cc) in ccs.iter().enumerate() {
        let key = i as u64;
        assert_eq!(
            cc.holders_of(key),
            vec![t1.pack()],
            "CC{i} holds {}",
            label(key)
        );
    }

    // T1 executes, then E1 fans out releases (one per span — these are
    // fire-and-forget: "lock release requests are satisfied immediately").
    println!("\nT1 executes; E1 → CC0/CC1/CC2  Release(T1)");
    for (i, _span) in plan.spans().iter().enumerate() {
        out.clear();
        ccs[i].handle(
            CcRequest::Release {
                token: t1,
                plan: Arc::clone(&plan),
                span_idx: i as u16,
            },
            &mut out,
        );
        assert!(out.is_empty(), "nothing waits behind T1");
    }
    for (i, cc) in ccs.iter().enumerate() {
        assert!(cc.holders_of(i as u64).is_empty());
    }
    println!("All locks released; lock tables empty.");
}
