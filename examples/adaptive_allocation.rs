//! SEDA-style thread-allocation tuning (Section 4.2).
//!
//! Given a fixed thread budget, how many threads should be concurrency
//! control and how many execution? The paper observes the optimum "is not
//! obvious" and points at SEDA-style dynamic resource allocation. This
//! example runs the harness's auto-tuner — short measurement epochs
//! driving an integer ternary search over the split — and compares the
//! split it finds against the paper's static 1/5 rule.
//!
//! Run: `cargo run --release --example adaptive_allocation [threads]`

use std::time::Duration;

use orthrus::harness::{systems, tune_cc_split, BenchConfig};
use orthrus::workload::MicroSpec;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    assert!(threads >= 2, "need at least one CC and one exec thread");

    let mut bc = BenchConfig::from_env();
    bc.measure = Duration::from_millis(300);
    bc.warmup = Duration::from_millis(100);

    // The Figure-5 workload: uniform 10-RMW, single-CC placement implied
    // by the uniform key spread.
    let spec = MicroSpec::uniform(bc.n_records as u64, 10, false);

    println!("Tuning the CC/exec split for a {threads}-thread budget\n");
    let result = tune_cc_split(threads, |n_cc| {
        let stats = systems::run_orthrus_split(spec.clone(), n_cc, threads - n_cc, &bc);
        let t = stats.throughput();
        println!(
            "  epoch: {n_cc:>3} CC / {:>3} exec → {t:>12.0} txns/sec",
            threads - n_cc
        );
        t
    });

    let paper_cc = (threads / 5).max(1);
    let paper = systems::run_orthrus_split(spec.clone(), paper_cc, threads - paper_cc, &bc);

    println!(
        "\ntuned:      {} CC / {} exec → {:>12.0} txns/sec ({} epochs)",
        result.best.n_cc,
        threads - result.best.n_cc,
        result.best.throughput,
        result.trace.len()
    );
    println!(
        "paper 1/5:  {} CC / {} exec → {:>12.0} txns/sec",
        paper_cc,
        threads - paper_cc,
        paper.throughput()
    );
}
