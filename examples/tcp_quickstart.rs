//! TCP quickstart: run ORTHRUS behind the `orthrus-net` front door and
//! talk to it over a real socket.
//!
//! The in-process quickstart (`examples/quickstart.rs`) clones a
//! `Session` and submits directly. This one goes through the wire: a
//! `NetServer` owns the engine, clients speak the length-prefixed,
//! CRC'd frame protocol, and the server's adaptive batcher decides how
//! many transactions ride each read syscall and how many completions
//! ride each write.
//!
//! Run: `cargo run --release --example tcp_quickstart`

use std::sync::Arc;
use std::time::Duration;

use orthrus::core::{CcAssignment, OrthrusConfig, OrthrusEngine};
use orthrus::net::{NetClient, NetConfig, NetServer};
use orthrus::storage::Table;
use orthrus::txn::Database;
use orthrus::workload::{MicroSpec, Spec};

fn main() {
    let n_records = 100_000;
    let n = 20_000u64; // transactions this client will send
    let db = Arc::new(Database::Flat(Table::new(n_records, 100)));

    // Engine in service mode; the NetServer takes the handle and owns
    // it (single completion pump) until shutdown hands it back.
    let cfg = OrthrusConfig::with_threads(2, 4, CcAssignment::KeyModulo);
    let engine = OrthrusEngine::service(Arc::clone(&db), cfg);
    let handle = engine.start(7);
    let server = NetServer::start(handle, NetConfig::default()).expect("bind loopback");
    println!("serving on {}", server.addr());

    // A protocol client: batches of programs go out as one frame (one
    // write syscall); responses carry the request id and the engine's
    // submit→commit latency.
    let mut client = NetClient::connect(server.addr()).expect("connect");
    let mut gen = Spec::Micro(MicroSpec::uniform(n_records as u64, 10, false)).generator(7, 0);
    let mut responses = Vec::new();
    let mut sent = 0u64;
    while sent < n {
        let batch: Vec<_> = (0..32).map(|_| gen.next_program()).collect();
        sent += batch.len() as u64;
        client.send_batch(batch).expect("send");
        // Closed-ish loop: opportunistically pick up finished work.
        client.poll_responses(&mut responses).expect("poll");
    }
    client
        .recv_exact(
            n as usize - responses.len(),
            Duration::from_secs(30),
            &mut responses,
        )
        .expect("all responses arrive");

    // Conservation across the wire: every request id answered once.
    let mut ids: Vec<u64> = responses.iter().map(|m| m.req_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, n, "one response per request");

    let (mut handle, net_stats) = server.shutdown();
    let stats = handle.shutdown();
    println!("committed  : {:>12}", stats.totals.committed_all);
    println!(
        "wire       : {:>12} read syscalls, {} write syscalls",
        net_stats.net_read_calls, net_stats.net_write_calls
    );
    println!(
        "batching   : {:>12.1} txns/request-frame, {:.1} completions/response-frame",
        net_stats.net_rx_txns as f64 / net_stats.net_rx_frames.max(1) as f64,
        net_stats.net_tx_completions as f64 / net_stats.net_tx_frames.max(1) as f64
    );

    // Serializability survived the socket: counters add up exactly.
    let total: u64 = (0..n_records as u64)
        .map(|k| unsafe { db.read_counter(k) })
        .sum();
    assert_eq!(total, stats.totals.committed_all * 10);
    println!("verified: {n} responses, {total} counter increments, zero lost updates");
}
