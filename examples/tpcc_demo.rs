//! TPC-C demo: the NewOrder + Payment mix of Section 4.4 on ORTHRUS,
//! deadlock-free locking, and 2PL with Dreadlocks, followed by the
//! accounting invariants that prove serializable execution.
//!
//! Run: `cargo run --release --example tpcc_demo [warehouses] [threads]`

use std::sync::Arc;
use std::time::Duration;

use orthrus::baselines::{DeadlockFreeEngine, TwoPlEngine};
use orthrus::common::RunParams;
use orthrus::core::{CcAssignment, OrthrusConfig, OrthrusEngine};
use orthrus::lockmgr::Dreadlocks;
use orthrus::storage::tpcc::{TpccConfig, TpccDb};
use orthrus::txn::Database;
use orthrus::workload::{Spec, TpccSpec};

fn check_invariants(db: &Database) {
    let t = db.tpcc();
    let w_delta: u64 = (0..t.warehouses.len())
        .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
        .sum();
    let d_delta: u64 = (0..t.districts.len())
        .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
        .sum();
    assert_eq!(w_delta, d_delta, "warehouse vs district payment totals");
    let hist: u64 = (0..t.districts.len())
        .map(|d| unsafe { t.districts.read_with(d, |r| r.history_ctr as u64) })
        .sum();
    let pays: u64 = (0..t.customers.len())
        .map(|c| unsafe { t.customers.read_with(c, |r| (r.payment_cnt - 1) as u64) })
        .sum();
    assert_eq!(hist, pays, "history rows vs customer payment counts");
    println!(
        "  invariants OK: {} cents of payments conserved across {} history rows",
        w_delta, hist
    );
}

fn main() {
    let warehouses: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    let mut cfg_t = TpccConfig::with_warehouses(warehouses);
    cfg_t.customers_per_district = 300; // scaled; see DESIGN.md #3
    cfg_t.order_slots_per_district = 512;
    cfg_t.history_slots_per_district = 512;

    let params = RunParams {
        threads,
        seed: 11,
        warmup: Duration::from_millis(200),
        measure: Duration::from_secs(1),
        ollp_noise_pct: 0,
    };
    let spec = Spec::Tpcc(TpccSpec::paper_mix(cfg_t));

    println!("TPC-C NewOrder+Payment 50/50, {warehouses} warehouses, {threads} threads\n");

    // ORTHRUS, partitioned by warehouse id (Section 4.4).
    {
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, params.seed)));
        let cfg = OrthrusConfig::for_cores(threads, CcAssignment::Warehouse);
        // for_cores(1) still runs 1 CC + 1 exec: label what actually
        // runs (the engine enforces the match).
        let params = RunParams {
            threads: cfg.total_threads(),
            ..params
        };
        let engine = OrthrusEngine::new(Arc::clone(&db), spec.clone(), cfg.clone());
        let stats = engine.run(&params);
        println!(
            "ORTHRUS ({} CC / {} exec): {:>10.0} txns/sec, {} OLLP retries",
            cfg.n_cc,
            cfg.n_exec,
            stats.throughput(),
            stats.totals.aborts_ollp
        );
        check_invariants(&db);
    }

    // Deadlock-free ordered locking.
    {
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, params.seed)));
        let engine = DeadlockFreeEngine::new(Arc::clone(&db), 1 << 14, spec.clone());
        let stats = engine.run(&params);
        println!(
            "Deadlock-free:            {:>10.0} txns/sec",
            stats.throughput()
        );
        check_invariants(&db);
    }

    // Dynamic 2PL with Dreadlocks detection.
    {
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, params.seed)));
        let engine = TwoPlEngine::new(
            Arc::clone(&db),
            Dreadlocks::new(threads),
            1 << 14,
            spec.clone(),
        );
        let stats = engine.run(&params);
        println!(
            "2PL w/ Dreadlocks:        {:>10.0} txns/sec, {} deadlock aborts",
            stats.throughput(),
            stats.totals.aborts_deadlock
        );
        // Dynamic 2PL can abort mid-transaction (no undo log, as in the
        // paper's prototype), so only the weaker invariant holds here: the
        // books stay consistent for *committed* effects but aborted
        // prefixes remain. We report instead of asserting.
        let t = db.tpcc();
        let w_delta: u64 = (0..t.warehouses.len())
            .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        println!("  payment volume applied (incl. aborted prefixes): {w_delta} cents");
    }
}
