//! Quickstart: run ORTHRUS as a *service* — start the engine, open a
//! client session, submit transactions, await their tickets, shut down.
//!
//! This is the open-loop front door (`OrthrusEngine::start`): clients
//! push `Program`s through a `Session` and get a `Ticket` per accepted
//! submission; the engine routes each submission to an execution thread
//! by its hot key, admits it through the configured admission policy,
//! and reports every commit back as a `Completion` carrying the
//! submit→commit latency. For the self-driving closed-loop harness
//! (`OrthrusEngine::new(...).run(...)`) see `examples/latency_profile.rs`
//! and the figure harness.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;

use orthrus::core::{CcAssignment, Completion, OrthrusConfig, OrthrusEngine};
use orthrus::storage::Table;
use orthrus::txn::Database;
use orthrus::workload::{MicroSpec, Spec};

fn main() {
    // A 100k-record table; transactions read-modify-write 10 uniformly
    // random records each (the paper's Figure-5 workload shape).
    let n_records = 100_000;
    let n = 20_000u64; // submissions this client will make
    let db = Arc::new(Database::Flat(Table::new(n_records, 100)));

    // 2 concurrency-control threads + 4 execution threads, service mode:
    // no synthetic workload — this program is the client.
    let cfg = OrthrusConfig::with_threads(2, 4, CcAssignment::KeyModulo);
    let engine = OrthrusEngine::service(Arc::clone(&db), cfg.clone());
    println!(
        "starting ORTHRUS service: {} CC + {} exec threads, {} ingest slots/thread ...",
        cfg.n_cc, cfg.n_exec, cfg.ingest_capacity
    );

    let mut handle = engine.start(7);
    handle.begin_measurement();
    let session = handle.session();

    // Any program source works; here the micro-workload generator stands
    // in for real clients. `submit` blocks on backpressure (full ingest
    // ring) and returns a ticket per accepted transaction.
    let mut gen = Spec::Micro(MicroSpec::uniform(n_records as u64, 10, false)).generator(7, 0);
    let mut completions: Vec<Completion> = Vec::new();
    for _ in 0..n {
        session
            .submit(gen.next_program())
            .expect("engine is accepting");
        handle.drain_completions(&mut completions);
    }

    // Shutdown fences out new submissions and drains every accepted
    // ticket — nothing in flight is dropped.
    let stats = handle.shutdown();
    handle.drain_completions(&mut completions);

    println!("throughput : {:>12.0} txns/sec", stats.throughput());
    println!("committed  : {:>12}", stats.totals.committed);
    println!(
        "latency    : p50 {:>8.1} µs, p99 {:>8.1} µs (submit→commit)",
        stats.p50_latency_us(),
        stats.p99_latency_us()
    );
    println!(
        "messages   : {:>12}  ({:.1} per txn)",
        stats.totals.messages_sent,
        stats.totals.messages_sent as f64 / stats.totals.committed.max(1) as f64
    );

    // Conservation: every accepted ticket completed exactly once ...
    assert_eq!(handle.accepted(), n);
    assert_eq!(completions.len() as u64, n, "one completion per ticket");
    let mut tickets: Vec<u64> = completions.iter().map(|c| c.ticket.0).collect();
    tickets.sort_unstable();
    tickets.dedup();
    assert_eq!(tickets.len() as u64, n, "no ticket completed twice");

    // ... and the logical locks serialized every RMW: counters add up
    // exactly.
    let total: u64 = (0..n_records as u64)
        .map(|k| unsafe { db.read_counter(k) })
        .sum();
    assert_eq!(total, stats.totals.committed_all * 10);
    println!("verified: {n} tickets completed, {total} counter increments, zero lost updates");
}
