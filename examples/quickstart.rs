//! Quickstart: build an ORTHRUS engine, run a small RMW workload, print
//! throughput and the execution-thread time breakdown.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use orthrus::common::RunParams;
use orthrus::core::{CcAssignment, OrthrusConfig, OrthrusEngine};
use orthrus::storage::Table;
use orthrus::txn::Database;
use orthrus::workload::{MicroSpec, Spec};

fn main() {
    // A 100k-record table; transactions read-modify-write 10 uniformly
    // random records each (the paper's Figure-5 workload shape).
    let n_records = 100_000;
    let db = Arc::new(Database::Flat(Table::new(n_records, 100)));
    let spec = Spec::Micro(MicroSpec::uniform(n_records as u64, 10, false));

    // 2 concurrency-control threads + 4 execution threads.
    let cfg = OrthrusConfig::with_threads(2, 4, CcAssignment::KeyModulo);
    let engine = OrthrusEngine::new(Arc::clone(&db), spec, cfg.clone());

    let params = RunParams {
        threads: cfg.total_threads(),
        seed: 7,
        warmup: Duration::from_millis(200),
        measure: Duration::from_secs(1),
        ollp_noise_pct: 0,
    };
    println!(
        "running ORTHRUS: {} CC + {} exec threads, uniform 10-RMW ...",
        cfg.n_cc, cfg.n_exec
    );
    let stats = engine.run(&params);

    println!("throughput : {:>12.0} txns/sec", stats.throughput());
    println!("committed  : {:>12}", stats.totals.committed);
    println!(
        "messages   : {:>12}  ({:.1} per txn)",
        stats.totals.messages_sent,
        stats.totals.messages_sent as f64 / stats.totals.committed.max(1) as f64
    );
    let b = stats.breakdown();
    println!(
        "exec-thread time: {:.1}% execution, {:.1}% locking, {:.1}% waiting",
        b.execution_pct, b.locking_pct, b.waiting_pct
    );

    // The logical locks serialized every RMW: the counters add up exactly.
    let total: u64 = (0..n_records as u64)
        .map(|k| unsafe { db.read_counter(k) })
        .sum();
    assert_eq!(total, stats.totals.committed_all * 10);
    println!("verified: {} counter increments, zero lost updates", total);
}
