//! Commit-latency profile: the throughput-for-latency trade ORTHRUS makes.
//!
//! The paper reports throughput only; a downstream adopter also needs to
//! know what partitioned functionality does to *latency*. Every lock in
//! ORTHRUS costs message hops and queueing delay, and execution threads
//! deliberately park transactions while lock grants are in flight
//! (Section 3.3's asynchrony) — so commit latency stretches even when
//! throughput wins. This example runs the paper's high-contention YCSB
//! RMW workload on three engines and prints mean / p50 / p99 / max.
//!
//! Run: `cargo run --release --example latency_profile [threads]`

use std::sync::Arc;
use std::time::Duration;

use orthrus::baselines::{DeadlockFreeEngine, TwoPlEngine};
use orthrus::common::{RunParams, RunStats};
use orthrus::core::{CcAssignment, OrthrusConfig, OrthrusEngine};
use orthrus::lockmgr::WaitDie;
use orthrus::storage::Table;
use orthrus::txn::Database;
use orthrus::workload::{MicroSpec, Spec};

const N_RECORDS: usize = 100_000;

fn report(name: &str, stats: &RunStats) {
    let lat = &stats.totals.latency;
    println!(
        "{name:<22}{:>12.0} txns/s {:>9.1}µs mean {:>9.1}µs p50 {:>9.1}µs p99 {:>9.1}µs max",
        stats.throughput(),
        lat.mean_ns() as f64 / 1_000.0,
        stats.p50_latency_us(),
        stats.p99_latency_us(),
        lat.max_ns() as f64 / 1_000.0,
    );
}

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    let params = RunParams {
        threads,
        seed: 17,
        warmup: Duration::from_millis(200),
        measure: Duration::from_secs(1),
        ollp_noise_pct: 0,
    };
    // The Appendix-A high-contention 10RMW workload: 2 hot of 64 + 8 cold.
    let spec = Spec::Micro(MicroSpec::hot_cold(N_RECORDS as u64, 64, 2, 10, false));

    println!("High-contention YCSB 10RMW, {threads} threads, {N_RECORDS} records\n");

    {
        let db = Arc::new(Database::Flat(Table::new(N_RECORDS, 100)));
        let cfg = OrthrusConfig::for_cores(threads, CcAssignment::KeyModulo);
        // for_cores(1) still runs 1 CC + 1 exec: label what actually
        // runs (the engine enforces the match).
        let params = RunParams {
            threads: cfg.total_threads(),
            ..params
        };
        let stats = OrthrusEngine::new(db, spec.clone(), cfg).run(&params);
        report("ORTHRUS", &stats);
    }
    {
        let db = Arc::new(Database::Flat(Table::new(N_RECORDS, 100)));
        let stats = DeadlockFreeEngine::new(db, 1 << 14, spec.clone()).run(&params);
        report("Deadlock-free", &stats);
    }
    {
        let db = Arc::new(Database::Flat(Table::new(N_RECORDS, 100)));
        let stats = TwoPlEngine::new(db, WaitDie, 1 << 14, spec.clone()).run(&params);
        report("2PL w/ wait-die", &stats);
    }

    println!(
        "\nNote: ORTHRUS's latency includes lock-message round trips and the\n\
         time a transaction sits parked while its execution thread works on\n\
         others — the deliberate asynchrony of Section 3.3. 2PL latencies\n\
         include retry loops after aborts."
    );
}
