//! Deadlock-handling comparison: the Section 4.1 experiment in miniature.
//! Four 2PL variants (wait-for graph, wait-die, Dreadlocks, deadlock-free
//! ordered) run the same contended 10-RMW workload while the hot-set
//! shrinks; watch the deadlock handlers fall behind the planner.
//!
//! Run: `cargo run --release --example deadlock_comparison [threads]`

use orthrus::harness::{systems, BenchConfig, SystemKind};
use orthrus::workload::MicroSpec;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let mut bc = BenchConfig::from_env();
    bc.n_records = 100_000;

    let systems_under_test = [
        SystemKind::DeadlockFree,
        SystemKind::TwoPlDreadlocks,
        SystemKind::TwoPlWaitDie,
        SystemKind::TwoPlWfg,
    ];

    println!("10-RMW (2 hot + 8 cold), {threads} threads — txns/sec by hot-set size\n");
    print!("{:<14}", "hot records");
    for kind in systems_under_test {
        print!("{:>20}", kind.label());
    }
    println!();

    for hot in [1024u64, 256, 64] {
        print!("{hot:<14}");
        for kind in systems_under_test {
            let spec = MicroSpec::hot_cold(bc.n_records as u64, hot, 2, 10, false);
            let stats = systems::run_micro(kind, spec, threads, &bc);
            print!("{:>20.0}", stats.throughput());
        }
        println!();
    }

    println!("\nabort sources at hot=64:");
    for kind in systems_under_test {
        let spec = MicroSpec::hot_cold(bc.n_records as u64, 64, 2, 10, false);
        let stats = systems::run_micro(kind, spec, threads, &bc);
        println!(
            "  {:<20} deadlock={:<8} wait-die={:<8} ({:.2}% of attempts)",
            kind.label(),
            stats.totals.aborts_deadlock,
            stats.totals.aborts_wait_die,
            100.0 * stats.abort_rate(),
        );
    }
}
