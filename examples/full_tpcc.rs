//! Full TPC-C five-transaction mix (extension beyond the paper's
//! NewOrder+Payment subset): 45% NewOrder, 43% Payment, 4% each of
//! OrderStatus, Delivery, and StockLevel.
//!
//! Every data-dependent shape OLLP supports is live here: by-name customer
//! lookups, Delivery's oldest-undelivered resolution, and StockLevel's
//! recent-item sweeps — all estimated lock-free from the reconnaissance
//! board and validated under locks.
//!
//! Run: `cargo run --release --example full_tpcc [warehouses] [threads]`

use std::sync::Arc;
use std::time::Duration;

use orthrus::baselines::{DeadlockFreeEngine, TwoPlEngine};
use orthrus::common::RunParams;
use orthrus::core::{CcAssignment, OrthrusConfig, OrthrusEngine};
use orthrus::lockmgr::Dreadlocks;
use orthrus::storage::tpcc::{TpccConfig, TpccDb};
use orthrus::txn::Database;
use orthrus::workload::{Spec, TpccSpec};

/// The delivery conservation law: every Payment moves money from balance
/// to ytd_payment (sum invariant); every Delivery adds its credit to both
/// the customer balance and the district's delivered ledger. Order slots
/// recycle; these ledgers do not.
fn check_invariants(db: &Database) {
    let t = db.tpcc();
    let w_delta: u64 = (0..t.warehouses.len())
        .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
        .sum();
    let d_delta: u64 = (0..t.districts.len())
        .map(|d| unsafe { t.districts.read_with(d, |r| r.ytd_cents) } - 3_000_000)
        .sum();
    assert_eq!(w_delta, d_delta, "warehouse vs district payment totals");

    let cust_sum: i128 = (0..t.customers.len())
        .map(|i| unsafe {
            t.customers
                .read_with(i, |r| r.balance_cents as i128 + r.ytd_payment_cents as i128)
        })
        .sum();
    let delivered: i128 = (0..t.districts.len())
        .map(|i| unsafe { t.districts.read_with(i, |r| r.delivered_cents as i128) })
        .sum();
    assert_eq!(cust_sum, delivered, "delivery credit conservation");

    let deliveries: u64 = (0..t.districts.len())
        .map(|i| unsafe { t.districts.read_with(i, |r| r.delivered_cnt as u64) })
        .sum();
    println!(
        "  invariants OK: {w_delta} cents paid, {delivered} cents delivered across {deliveries} deliveries"
    );
}

fn main() {
    let warehouses: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    let mut cfg_t = TpccConfig::with_warehouses(warehouses);
    cfg_t.customers_per_district = 300; // scaled; see DESIGN.md #3
    cfg_t.order_slots_per_district = 512;
    cfg_t.history_slots_per_district = 512;
    // Pre-load orders so OrderStatus/Delivery/StockLevel have data from
    // the first transaction (spec loads 3,000/district, 30% undelivered).
    let cfg_t = cfg_t.with_initial_orders(256);

    let params = RunParams {
        threads,
        seed: 23,
        warmup: Duration::from_millis(200),
        measure: Duration::from_secs(1),
        ollp_noise_pct: 0,
    };
    let spec = Spec::Tpcc(TpccSpec::full_mix(cfg_t));

    println!("Full TPC-C mix 45/43/4/4/4, {warehouses} warehouses, {threads} threads\n");

    // ORTHRUS, partitioned by warehouse id.
    {
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, params.seed)));
        let cfg = OrthrusConfig::for_cores(threads, CcAssignment::Warehouse);
        // for_cores(1) still runs 1 CC + 1 exec: label what actually
        // runs (the engine enforces the match).
        let params = RunParams {
            threads: cfg.total_threads(),
            ..params
        };
        let engine = OrthrusEngine::new(Arc::clone(&db), spec.clone(), cfg.clone());
        let stats = engine.run(&params);
        println!(
            "ORTHRUS ({} CC / {} exec): {:>10.0} txns/sec, {} OLLP retries",
            cfg.n_cc,
            cfg.n_exec,
            stats.throughput(),
            stats.totals.aborts_ollp
        );
        check_invariants(&db);
    }

    // Deadlock-free ordered locking.
    {
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, params.seed)));
        let engine = DeadlockFreeEngine::new(Arc::clone(&db), 1 << 14, spec.clone());
        let stats = engine.run(&params);
        println!(
            "Deadlock-free:            {:>10.0} txns/sec, {} OLLP retries",
            stats.throughput(),
            stats.totals.aborts_ollp
        );
        check_invariants(&db);
    }

    // Dynamic 2PL with Dreadlocks. The full mix has a real lock-order
    // inversion (OrderStatus: customer→district; Payment:
    // district→customer), so unlike the paper's two-transaction subset,
    // genuine deadlocks occur and the detector earns its keep.
    {
        let db = Arc::new(Database::Tpcc(TpccDb::load(cfg_t, params.seed)));
        let engine = TwoPlEngine::new(
            Arc::clone(&db),
            Dreadlocks::new(threads),
            1 << 14,
            spec.clone(),
        );
        let stats = engine.run(&params);
        println!(
            "2PL w/ Dreadlocks:        {:>10.0} txns/sec, {} deadlock aborts",
            stats.throughput(),
            stats.totals.aborts_deadlock
        );
        // No undo log: aborted prefixes persist, so the exact conservation
        // laws do not apply — report the applied volume instead.
        let t = db.tpcc();
        let w_delta: u64 = (0..t.warehouses.len())
            .map(|w| unsafe { t.warehouses.read_with(w, |r| r.ytd_cents) } - 30_000_000)
            .sum();
        println!("  payment volume applied (incl. aborted prefixes): {w_delta} cents");
    }
}
