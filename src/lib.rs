//! # ORTHRUS — a reproduction of "Design Principles for Scaling Multi-core
//! # OLTP Under High Contention" (Ren, Faleiro, Abadi — SIGMOD 2016)
//!
//! This umbrella crate re-exports the whole workspace behind one
//! dependency. The system under study is **ORTHRUS**
//! ([`core::OrthrusEngine`]): a main-memory transaction manager that
//! (1) partitions *functionality* across cores — dedicated
//! concurrency-control threads own disjoint slices of the lock space and
//! talk to execution threads only via latch-free SPSC message rings — and
//! (2) plans each transaction's data accesses in advance so locks are
//! acquired in a global order and deadlock never occurs.
//!
//! The paper's baselines ship alongside: dynamic two-phase locking with
//! wait-die / wait-for-graph / Dreadlocks deadlock handling
//! ([`baselines::TwoPlEngine`]), planned deadlock-free locking over a
//! shared lock table ([`baselines::DeadlockFreeEngine`]), and an
//! H-Store-style partitioned store ([`baselines::PartitionedStoreEngine`]).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use orthrus::common::RunParams;
//! use orthrus::core::{CcAssignment, OrthrusConfig, OrthrusEngine};
//! use orthrus::storage::Table;
//! use orthrus::txn::Database;
//! use orthrus::workload::{MicroSpec, Spec};
//!
//! // 10,000 records; transactions RMW 4 uniformly random records.
//! let db = Arc::new(Database::Flat(Table::new(10_000, 100)));
//! let spec = Spec::Micro(MicroSpec::uniform(10_000, 4, false));
//! let cfg = OrthrusConfig::with_threads(1, 2, CcAssignment::KeyModulo);
//! let engine = OrthrusEngine::new(db, spec, cfg);
//! let stats = engine.run(&RunParams::quick(3));
//! assert!(stats.totals.committed > 0);
//! println!("{:.0} txns/sec", stats.throughput());
//! ```
//!
//! ## Serving clients (open loop)
//!
//! The engine also runs as a *service*: start it, submit transactions
//! through cloneable sessions, and collect ticketed completions with
//! submit→commit latency — see `examples/quickstart.rs`.
//!
//! ```
//! use std::sync::Arc;
//! use orthrus::core::{CcAssignment, OrthrusConfig, OrthrusEngine};
//! use orthrus::storage::Table;
//! use orthrus::txn::{Database, Program};
//!
//! let db = Arc::new(Database::Flat(Table::new(1_000, 64)));
//! let cfg = OrthrusConfig::with_threads(1, 1, CcAssignment::KeyModulo);
//! let mut handle = OrthrusEngine::service(db, cfg).start(7);
//! let session = handle.session();
//! for k in 0..100u64 {
//!     session.submit(Program::Rmw { keys: vec![k % 10] }).unwrap();
//! }
//! let stats = handle.shutdown();
//! let mut done = Vec::new();
//! handle.drain_completions(&mut done);
//! assert_eq!(done.len(), 100); // every ticket completes exactly once
//! assert_eq!(stats.totals.committed_all, 100);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! per-figure reproduction harness.

pub use orthrus_baselines as baselines;
pub use orthrus_common as common;
pub use orthrus_core as core;
pub use orthrus_durability as durability;
pub use orthrus_harness as harness;
pub use orthrus_lockmgr as lockmgr;
pub use orthrus_net as net;
pub use orthrus_part as part;
pub use orthrus_spsc as spsc;
pub use orthrus_storage as storage;
pub use orthrus_txn as txn;
pub use orthrus_workload as workload;
